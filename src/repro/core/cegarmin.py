"""CEGAR_min: max-flow re-support of structural patches (Section 3.6.3).

A structural patch is expressed over primary inputs and is typically
large and expensive.  ``CEGAR_min`` finds internal implementation
signals functionally equivalent to internal patch signals (simulation
filtering + SAT confirmation), then computes a minimum-weight node cut
of the patch circuit among signals that have such equivalents; the cut
becomes the new, cheaper patch support and everything below it is
discarded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..flow.maxflow import min_node_cut
from ..network.network import Network
from ..network.node import GateType
from ..network.simulate import Simulator
from ..sat.backend import QueryTraits, solver_for
from ..sat.solver import SatBudgetExceeded
from ..sat.template import CnfTemplate
from ..sat.types import mklit
from .patch import Patch
from .pipeline import Pass, PassOutcome, contract

if TYPE_CHECKING:  # pragma: no cover
    from .pipeline import EcoContext


@dataclass
class Equivalence:
    """A confirmed functional match between patch and implementation."""

    patch_node: int
    impl_node: int
    impl_name: str
    complemented: bool
    weight: int


@dataclass
class CegarMinResult:
    """Re-supported patch and its accounting."""

    network: Network
    support: List[str]
    cost: int
    gate_count: int
    cut_weight: float
    equivalences: List[Equivalence] = field(default_factory=list)
    sat_calls: int = 0


def cegar_min(
    impl: Network,
    patch: Network,
    candidate_ids: Sequence[int],
    weight_of: Dict[int, int],
    sim_patterns: int = 256,
    seed: int = 2018,
    budget_conflicts: Optional[int] = 20000,
    max_sat_calls: int = 2000,
) -> CegarMinResult:
    """Minimize the support cost of ``patch`` against ``impl``.

    Args:
        impl: the implementation (targets may keep their old logic —
            candidates must exclude every target's TFO, which the
            caller enforces via ``candidate_ids``).
        patch: single-PO network whose PIs are implementation PI names.
        candidate_ids: implementation node ids allowed as new supports.
        weight_of: candidate id → resource cost.
        sim_patterns / seed: simulation filtering parameters.
        budget_conflicts / max_sat_calls: SAT confirmation budgets.

    Returns:
        a :class:`CegarMinResult`; when no cut improves on the PI
        support, the result simply reproduces the original patch.
    """
    if patch.num_pos != 1:
        raise ValueError("cegar_min expects a single-PO patch")
    po_name, po_node = patch.pos[0]

    # --- simulation filtering ------------------------------------------
    # patch inputs may be impl PIs *or* internal signals (after
    # resubstitution), so patterns come from the full simulation values
    with obs.span("cegar_min.simulate"):
        sim_impl = Simulator(impl, nbits=sim_patterns, seed=seed)
        mask = sim_impl.mask
        impl_values = sim_impl.values()
        patch_pi_patterns: Dict[int, int] = {}
        for pi in patch.pis:
            name = patch.node(pi).name
            patch_pi_patterns[pi] = impl_values[impl.node_by_name(name)]
        patch_values = patch.evaluate(patch_pi_patterns, mask)

        by_signature: Dict[int, List[int]] = {}
        for nid in candidate_ids:
            sig = impl_values[nid]
            if sig & 1:
                sig = ~sig & mask
            by_signature.setdefault(sig, []).append(nid)
        # rank each signature class once (cheapest equivalent first)
        # instead of re-sorting per patch node
        for sig_class in by_signature.values():
            sig_class.sort(key=lambda n: (weight_of.get(n, 1), n))

    # --- SAT confirmation ----------------------------------------------
    with obs.span("cegar_min.confirm"):
        solver = solver_for(QueryTraits(incremental=True))
        impl_vars = CnfTemplate(impl).stamp(solver)
        patch_pi_vars = {
            pi: impl_vars[impl.node_by_name(patch.node(pi).name)]
            for pi in patch.pis
        }
        patch_vars = CnfTemplate(patch).stamp(solver, pi_vars=patch_pi_vars)

        sat_calls = 0
        equivalences: Dict[int, Equivalence] = {}
        for pnode in patch.topo_order():
            sig = patch_values[pnode.nid]
            comp_key = sig
            if comp_key & 1:
                comp_key = ~comp_key & mask
            for cand in by_signature.get(comp_key, ()):
                if sat_calls + 2 > max_sat_calls:
                    break
                complemented = impl_values[cand] != sig
                if complemented and (impl_values[cand] != (~sig & mask)):
                    continue
                p, q = patch_vars[pnode.nid], impl_vars[cand]
                try:
                    sat_calls += 1
                    first = solver.solve(
                        [mklit(p), mklit(q, not complemented)],
                        budget_conflicts=budget_conflicts,
                    )
                    if first:
                        continue
                    sat_calls += 1
                    second = solver.solve(
                        [mklit(p, True), mklit(q, complemented)],
                        budget_conflicts=budget_conflicts,
                    )
                    if second:
                        continue
                except SatBudgetExceeded:
                    continue
                node = impl.node(cand)
                equivalences[pnode.nid] = Equivalence(
                    patch_node=pnode.nid,
                    impl_node=cand,
                    impl_name=node.name or f"n{cand}",
                    complemented=complemented,
                    weight=weight_of.get(cand, 1),
                )
                break
    obs.inc("cegar_min.sat_calls", sat_calls)
    obs.inc("cegar_min.equivalences", len(equivalences))

    # --- min-weight node cut --------------------------------------------
    with obs.span("cegar_min.cut"):
        edges: List[Tuple[int, int]] = []
        for node in patch.nodes():
            for f in node.fanins:
                edges.append((f, node.nid))
        sink = -1  # virtual sink behind the PO
        edges.append((po_node, sink))
        node_weights: Dict[int, float] = {
            pnid: eq.weight for pnid, eq in equivalences.items()
        }
        cut_weight, cut_nodes = min_node_cut(
            edges, sources=list(patch.pis), sink=sink, node_weights=node_weights
        )

    if not cut_nodes or cut_weight == float("inf"):
        # no usable cut: keep the original patch
        support = [patch.node(pi).name for pi in patch.pis]
        cost = sum(
            weight_of.get(impl.node_by_name(s), 1) for s in support
        )
        return CegarMinResult(
            network=patch,
            support=support,
            cost=cost,
            gate_count=patch.num_gates,
            cut_weight=float("inf"),
            equivalences=list(equivalences.values()),
            sat_calls=sat_calls,
        )

    rebuilt = _rebuild_above_cut(patch, po_name, po_node, cut_nodes, equivalences)
    support = [rebuilt.node(pi).name for pi in rebuilt.pis]
    cost = sum(equivalences[c].weight for c in cut_nodes)
    return CegarMinResult(
        network=rebuilt,
        support=support,
        cost=cost,
        gate_count=rebuilt.num_gates,
        cut_weight=cut_weight,
        equivalences=list(equivalences.values()),
        sat_calls=sat_calls,
    )


def _rebuild_above_cut(
    patch: Network,
    po_name: str,
    po_node: int,
    cut_nodes: Set[int],
    equivalences: Dict[int, Equivalence],
) -> Network:
    """Copy the patch logic between the cut and the PO.

    Cut nodes become PIs named after their implementation equivalents
    (with a NOT when the equivalence is complemented).
    """
    out = Network("cegar_min_patch")
    mapping: Dict[int, int] = {}
    pi_cache: Dict[str, int] = {}

    def leaf(nid: int) -> int:
        eq = equivalences[nid]
        if eq.impl_name not in pi_cache:
            pi_cache[eq.impl_name] = out.add_pi(eq.impl_name)
        base = pi_cache[eq.impl_name]
        if eq.complemented:
            return out.add_gate(GateType.NOT, [base])
        return base

    order: List[int] = []
    seen: Set[int] = set()
    stack: List[Tuple[int, bool]] = [(po_node, False)]
    while stack:
        nid, expanded = stack.pop()
        if expanded:
            order.append(nid)
            continue
        if nid in seen:
            continue
        seen.add(nid)
        if nid in cut_nodes:
            continue  # leaves handled lazily
        stack.append((nid, True))
        for f in patch.node(nid).fanins:
            if f not in seen:
                stack.append((f, False))

    for nid in order:
        node = patch.node(nid)
        fanins = []
        for f in node.fanins:
            if f in cut_nodes:
                if f not in mapping:
                    mapping[f] = leaf(f)
                fanins.append(mapping[f])
            else:
                fanins.append(mapping[f])
        if node.is_const:
            mapping[nid] = out.add_const(
                1 if node.gtype is GateType.CONST1 else 0
            )
        elif node.is_pi:
            raise ValueError("patch PI above the cut — cut is not separating")
        else:
            mapping[nid] = out.add_gate(node.gtype, fanins)

    if po_node in cut_nodes:
        mapping[po_node] = leaf(po_node)
    out.add_po(mapping[po_node], po_name)
    return out


class CegarMinPass(Pass):
    """Max-flow re-support of the current structural patch (§3.6.3).

    Degrades gracefully under an exhausted run budget: unconfirmable
    equivalences are simply not used, and the unimproved patch is kept
    whenever the cut does not beat it on (cost, gate count).
    """

    name = "cegar_min"
    optional = True
    contract = contract(
        reads=("current", "divisors", "target.patch"),
        writes=("target.patch",),
        uses_solver=True,
        optional=True,
    )

    def run(self, ctx: "EcoContext") -> PassOutcome:
        cfg = ctx.config
        tgt = ctx.target
        assert tgt is not None and tgt.patch is not None
        patch = tgt.patch
        divisors = ctx.divisors
        with ctx.budget.metered() as cap:
            result = cegar_min(
                ctx.current,
                patch.network,
                candidate_ids=divisors.ids,
                weight_of=divisors.cost,
                sim_patterns=cfg.sim_patterns,
                seed=cfg.seed,
                budget_conflicts=cap,
            )
        ctx.stats.bump("cegarmin_sat_calls", result.sat_calls)
        if result.cost < patch.cost or (
            result.cost == patch.cost and result.gate_count < patch.gate_count
        ):
            tgt.patch = Patch(
                target=patch.target,
                network=result.network,
                support=result.support,
                cost=result.cost,
                gate_count=result.gate_count,
                method="cegar_min",
            )
            return PassOutcome(detail=f"cost {patch.cost} -> {result.cost}")
        return PassOutcome(detail="kept original")
