"""Patch-function computation by cube enumeration (Section 3.5).

Instead of extracting an interpolant from a resolution proof, the paper
enumerates satisfying assignments of the extended miter and expands each
into a prime cube via ``minimize_assumptions``:

1. assume onset conditions (miter = 1, target = 0); a model yields an
   onset point in divisor space;
2. assume offset conditions (miter = 1, target = 1) plus the point's
   divisor literals; UNSAT certifies the point avoids the offset;
3. minimizing the divisor-literal assumptions yields a prime cube;
4. a blocking clause removes the cube from the onset and the loop
   continues until the onset is exhausted.

The collected cubes form a prime SOP, cleaned of single-cube
containment, then factored and synthesized by :mod:`repro.sop`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from .. import obs
from ..sat.solver import Solver
from ..sat.types import mklit, neg
from ..sop.cube import Cube
from ..sop.sop import Sop
from .patch import Patch
from .pipeline import Pass, PassOutcome, contract
from .quantify import QMITER_PO
from .support import AssumptionMinimizer, SupportStats

if TYPE_CHECKING:  # pragma: no cover
    from .pipeline import EcoContext


class PatchEnumerationError(Exception):
    """Raised when enumeration discovers the divisors are insufficient
    or a resource cap is hit."""


@dataclass
class EnumerationStats:
    """Instrumentation for one cube-enumeration run."""

    cubes: int = 0
    onset_calls: int = 0
    offset_calls: int = 0
    minimize_calls: int = 0
    minimize_sat_calls: int = 0


def enumerate_patch_sop(
    solver: Solver,
    onset_base: Sequence[int],
    offset_base: Sequence[int],
    divisor_vars: Sequence[int],
    blocking_extra: Sequence[int],
    mode: str = "minassump",
    max_cubes: int = 5000,
    budget_conflicts: Optional[int] = None,
    stats: Optional[EnumerationStats] = None,
    blocking_group: Optional[int] = None,
) -> Sop:
    """Enumerate a prime SOP for the patch over ``divisor_vars``.

    Args:
        solver: contains the CNF of the (quantified, extended) miter.
        onset_base: assumption literals selecting the onset side
            (typically miter = 1, target = 0).
        offset_base: assumption literals selecting the offset side
            (typically miter = 1, target = 1).
        divisor_vars: solver variables of the patch support, in
            preference (cost-ascending) order for literal retention.
        blocking_extra: literals prepended to every blocking clause so
            the block only constrains the onset side (e.g. the positive
            target literal).
        mode: ``"minassump"`` (Algorithm 1 prime expansion) or
            ``"analyze_final"`` (the baseline: cube = assumption core).
        max_cubes: enumeration cap; overruns raise.
        budget_conflicts: per-SAT-call conflict budget.
        blocking_group: retractable group the blocking clauses join, so
            a shared solver can retract them after enumeration (see
            :meth:`repro.sat.Solver.new_group`).

    Returns:
        the onset cover as a :class:`~repro.sop.sop.Sop` whose positions
        follow ``divisor_vars`` order.

    Raises:
        PatchEnumerationError: divisors insufficient or cap exceeded.
        SatBudgetExceeded: a SAT call ran out of budget.
    """
    stats = stats if stats is not None else EnumerationStats()
    width = len(divisor_vars)
    sop = Sop(width)
    onset_base = list(onset_base)
    offset_base = list(offset_base)
    blocking_extra = list(blocking_extra)

    while True:
        stats.onset_calls += 1
        if not solver.solve(onset_base, budget_conflicts=budget_conflicts):
            break
        point = [solver.model_value(mklit(v)) for v in divisor_vars]
        point_lits = [mklit(v, point[i] == 0) for i, v in enumerate(divisor_vars)]

        stats.offset_calls += 1
        if solver.solve(
            offset_base + point_lits, budget_conflicts=budget_conflicts
        ):
            raise PatchEnumerationError(
                "onset point intersects the offset: divisor set insufficient"
            )
        if mode == "analyze_final":
            core = solver.core
            chosen = [lit for lit in point_lits if lit in core]
        elif mode == "minassump":
            stats.minimize_calls += 1
            mstats = SupportStats()
            minimizer = AssumptionMinimizer(
                solver, offset_base, budget_conflicts, mstats
            )
            chosen = minimizer.minimize(point_lits, check=False)
            stats.minimize_sat_calls += mstats.sat_calls
        else:
            raise ValueError(f"unknown enumeration mode {mode!r}")

        var_pos = {v: i for i, v in enumerate(divisor_vars)}
        literal_map = {var_pos[lit >> 1]: 0 if (lit & 1) else 1 for lit in chosen}
        cube = Cube.from_literals(width, literal_map)
        sop.add(cube)
        stats.cubes += 1
        if stats.cubes > max_cubes:
            raise PatchEnumerationError(f"cube cap {max_cubes} exceeded")

        solver.add_clause(
            blocking_extra + [neg(lit) for lit in chosen],
            group=blocking_group,
        )

    sop.remove_contained_cubes()
    return sop


def shrink_sop(
    sop: Sop, used_positions: List[int], support_ids: List[int]
) -> Tuple[Sop, List[int]]:
    """Restrict an SOP to the positions that actually appear in cubes."""
    index = {pos: i for i, pos in enumerate(used_positions)}
    out = Sop(len(used_positions))
    for cube in sop:
        out.add(
            Cube.from_literals(
                len(used_positions),
                {index[p]: v for p, v in cube.literals().items()},
            )
        )
    kept_ids = [support_ids[p] for p in used_positions]
    return out, kept_ids


class PatchFunctionPass(Pass):
    """Section 3.5: build the patch function over the chosen support.

    Default route is cube enumeration on the support phase's solver
    (first stamp): the learned clauses carry over and the blocking
    clauses are group-retracted afterwards.  With
    ``patch_function_method="interpolation"`` the pre-paper
    proof-interpolation route ([15], expression (3)) is used instead.
    Leaves the finished :class:`Patch` in ``ctx.target.patch``.
    """

    name = "patch_function"
    contract = contract(
        reads=(
            "target.qm",
            "target.divisors",
            "target.sat",
            "target.support_ids",
        ),
        # support_ids is read-modify-write: re-sorted cost-ascending
        writes=("target.support_ids", "target.patch"),
        uses_solver=True,
    )

    def run(self, ctx: "EcoContext") -> PassOutcome:
        cfg = ctx.config
        tgt = ctx.target
        assert tgt is not None and tgt.qm is not None and tgt.sat is not None
        qm, divisors = tgt.qm, tgt.divisors
        # downstream order contract: support cost-ascending, ties by id
        # (the pre-pipeline engine sorted at the end of its support phase)
        support_ids = sorted(
            tgt.support_ids, key=lambda n: (divisors.cost[n], n)
        )
        tgt.support_ids = support_ids
        target_name = tgt.name

        if cfg.patch_function_method == "interpolation":
            from .interp import interpolation_patch

            with ctx.budget.metered() as cap:
                result = interpolation_patch(
                    qm,
                    support_ids,
                    divisors.names,
                    budget_conflicts=cap,
                )
            net = result.network
            net.rename_po(0, target_name)
            kept = [
                i
                for i in support_ids
                if divisors.names[i] in set(result.support)
            ]
            tgt.patch = Patch(
                target=target_name,
                network=net,
                support=result.support,
                cost=sum(divisors.cost[i] for i in kept),
                gate_count=result.gate_count,
                method="interpolation",
            )
            return PassOutcome(detail="interpolation")

        solver = tgt.sat.solver
        varmap = tgt.sat.vars1
        po_node = dict(qm.net.pos)[QMITER_PO]
        m = varmap[po_node]
        n = varmap[qm.target_pi]
        divisor_vars = [varmap[qm.divisor_nodes[i]] for i in support_ids]
        obs.inc("engine.patch_solver_reuse")
        estats = EnumerationStats()
        with ctx.budget.metered() as cap:
            group = solver.new_group()
            try:
                sop = enumerate_patch_sop(
                    solver,
                    onset_base=[mklit(m), mklit(n, True)],
                    offset_base=[mklit(m), mklit(n)],
                    divisor_vars=divisor_vars,
                    blocking_extra=[mklit(n)],
                    mode=cfg.enumeration_mode,
                    max_cubes=cfg.max_cubes,
                    budget_conflicts=cap,
                    stats=estats,
                    blocking_group=group,
                )
            finally:
                solver.release_group(group)
        ctx.stats.bump("cubes", estats.cubes)
        obs.inc("engine.cubes", estats.cubes)

        if (
            cfg.use_isop_refine
            and 0 < len(support_ids) <= cfg.isop_refine_max_support
        ):
            # enumerate the offset cover too, then re-minimize between
            # the bounds with ISOP (everything else is don't-care); the
            # onset blocking clauses were just retracted with their
            # group, so the offset-side checks run on the same solver
            from ..sop.isop import isop_refine

            with ctx.budget.metered() as cap:
                group2 = solver.new_group()
                try:
                    offset_sop = enumerate_patch_sop(
                        solver,
                        onset_base=[mklit(m), mklit(n)],
                        offset_base=[mklit(m), mklit(n, True)],
                        divisor_vars=divisor_vars,
                        blocking_extra=[mklit(n, True)],
                        mode=cfg.enumeration_mode,
                        max_cubes=cfg.max_cubes,
                        budget_conflicts=cap,
                        blocking_group=group2,
                    )
                finally:
                    solver.release_group(group2)
            sop = isop_refine(sop, offset_sop)

        from ..sop.synth import sop_to_network

        used_positions = sorted(
            {pos for cube in sop for pos in cube.literals()}
        )
        shrunk, kept_ids = shrink_sop(sop, used_positions, support_ids)
        names = [divisors.names[i] for i in kept_ids]
        net = sop_to_network(shrunk, names, output_name=target_name)
        cost = sum(divisors.cost[i] for i in kept_ids)
        tgt.patch = Patch(
            target=target_name,
            network=net,
            support=names,
            cost=cost,
            gate_count=net.num_gates,
            method="sat",
        )
        return PassOutcome(detail=f"{estats.cubes} cubes")
