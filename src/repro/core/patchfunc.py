"""Patch-function computation by cube enumeration (Section 3.5).

Instead of extracting an interpolant from a resolution proof, the paper
enumerates satisfying assignments of the extended miter and expands each
into a prime cube via ``minimize_assumptions``:

1. assume onset conditions (miter = 1, target = 0); a model yields an
   onset point in divisor space;
2. assume offset conditions (miter = 1, target = 1) plus the point's
   divisor literals; UNSAT certifies the point avoids the offset;
3. minimizing the divisor-literal assumptions yields a prime cube;
4. a blocking clause removes the cube from the onset and the loop
   continues until the onset is exhausted.

The collected cubes form a prime SOP, cleaned of single-cube
containment, then factored and synthesized by :mod:`repro.sop`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..sat.solver import Solver
from ..sat.types import mklit, neg
from ..sop.cube import Cube
from ..sop.sop import Sop
from .support import AssumptionMinimizer, SupportStats


class PatchEnumerationError(Exception):
    """Raised when enumeration discovers the divisors are insufficient
    or a resource cap is hit."""


@dataclass
class EnumerationStats:
    """Instrumentation for one cube-enumeration run."""

    cubes: int = 0
    onset_calls: int = 0
    offset_calls: int = 0
    minimize_calls: int = 0
    minimize_sat_calls: int = 0


def enumerate_patch_sop(
    solver: Solver,
    onset_base: Sequence[int],
    offset_base: Sequence[int],
    divisor_vars: Sequence[int],
    blocking_extra: Sequence[int],
    mode: str = "minassump",
    max_cubes: int = 5000,
    budget_conflicts: Optional[int] = None,
    stats: Optional[EnumerationStats] = None,
    blocking_group: Optional[int] = None,
) -> Sop:
    """Enumerate a prime SOP for the patch over ``divisor_vars``.

    Args:
        solver: contains the CNF of the (quantified, extended) miter.
        onset_base: assumption literals selecting the onset side
            (typically miter = 1, target = 0).
        offset_base: assumption literals selecting the offset side
            (typically miter = 1, target = 1).
        divisor_vars: solver variables of the patch support, in
            preference (cost-ascending) order for literal retention.
        blocking_extra: literals prepended to every blocking clause so
            the block only constrains the onset side (e.g. the positive
            target literal).
        mode: ``"minassump"`` (Algorithm 1 prime expansion) or
            ``"analyze_final"`` (the baseline: cube = assumption core).
        max_cubes: enumeration cap; overruns raise.
        budget_conflicts: per-SAT-call conflict budget.
        blocking_group: retractable group the blocking clauses join, so
            a shared solver can retract them after enumeration (see
            :meth:`repro.sat.Solver.new_group`).

    Returns:
        the onset cover as a :class:`~repro.sop.sop.Sop` whose positions
        follow ``divisor_vars`` order.

    Raises:
        PatchEnumerationError: divisors insufficient or cap exceeded.
        SatBudgetExceeded: a SAT call ran out of budget.
    """
    stats = stats if stats is not None else EnumerationStats()
    width = len(divisor_vars)
    sop = Sop(width)
    onset_base = list(onset_base)
    offset_base = list(offset_base)
    blocking_extra = list(blocking_extra)

    while True:
        stats.onset_calls += 1
        if not solver.solve(onset_base, budget_conflicts=budget_conflicts):
            break
        point = [solver.model_value(mklit(v)) for v in divisor_vars]
        point_lits = [mklit(v, point[i] == 0) for i, v in enumerate(divisor_vars)]

        stats.offset_calls += 1
        if solver.solve(
            offset_base + point_lits, budget_conflicts=budget_conflicts
        ):
            raise PatchEnumerationError(
                "onset point intersects the offset: divisor set insufficient"
            )
        if mode == "analyze_final":
            core = solver.core
            chosen = [lit for lit in point_lits if lit in core]
        elif mode == "minassump":
            stats.minimize_calls += 1
            mstats = SupportStats()
            minimizer = AssumptionMinimizer(
                solver, offset_base, budget_conflicts, mstats
            )
            chosen = minimizer.minimize(point_lits, check=False)
            stats.minimize_sat_calls += mstats.sat_calls
        else:
            raise ValueError(f"unknown enumeration mode {mode!r}")

        var_pos = {v: i for i, v in enumerate(divisor_vars)}
        literal_map = {var_pos[lit >> 1]: 0 if (lit & 1) else 1 for lit in chosen}
        cube = Cube.from_literals(width, literal_map)
        sop.add(cube)
        stats.cubes += 1
        if stats.cubes > max_cubes:
            raise PatchEnumerationError(f"cube cap {max_cubes} exceeded")

        solver.add_clause(
            blocking_extra + [neg(lit) for lit in chosen],
            group=blocking_group,
        )

    sop.remove_contained_cubes()
    return sop
