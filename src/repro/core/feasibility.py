"""Target-sufficiency check (Section 3.2).

Expression (1), ``∃x ∀n M(n, x)``, must be UNSAT for the ECO to have a
solution.  Two decision procedures are provided, mirroring the paper:

* ``expansion`` — universally quantify the targets by cofactor
  expansion and run a plain SAT check (combinational equivalence
  checking style);
* ``qbf`` — CEGAR 2QBF (the ABC ``qbf`` alternative), whose
  countermoves additionally feed the certificate-based structural patch
  and the partial-expansion quantification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from .. import obs
from ..sat.backend import QueryTraits, solver_for
from ..sat.solver import SatBudgetExceeded
from ..sat.tseitin import encode_network
from ..sat.types import mklit
from ..twoqbf.cegar import QbfBudgetExceeded, solve_exists_forall
from .miter import EcoMiter, build_miter
from .pipeline import Pass, PassOutcome, contract
from .quantify import QMITER_PO, build_quantified_miter

if TYPE_CHECKING:  # pragma: no cover
    from .pipeline import EcoContext


class EcoInfeasibleError(Exception):
    """Raised when the given targets cannot rectify the implementation."""


@dataclass
class FeasibilityResult:
    """Outcome of the sufficiency check.

    Attributes:
        feasible: True / False, or None when the budget ran out (the
            paper then *assumes* feasibility and falls back to the
            structural patch).
        witness: an input assignment (miter x-PI id → 0/1) exhibiting an
            unfixable mismatch, when infeasible.
        countermoves: target assignments collected by the QBF method
            (certificate material for Sections 3.1/3.6.2).
        method: ``"expansion"`` or ``"qbf"``.
        copies: cofactor copies built (expansion) or CEGAR rounds (qbf).
    """

    feasible: Optional[bool]
    witness: Optional[Dict[int, int]] = None
    countermoves: List[Dict[int, int]] = field(default_factory=list)
    method: str = "expansion"
    copies: int = 0


def check_feasibility(
    miter: EcoMiter,
    method: str = "auto",
    budget_conflicts: Optional[int] = None,
    max_expansion_targets: int = 7,
) -> FeasibilityResult:
    """Decide whether the freed targets suffice to solve the ECO.

    ``method`` is ``"expansion"``, ``"qbf"``, or ``"auto"`` (expansion
    up to ``max_expansion_targets`` targets, CEGAR beyond).
    """
    if method == "auto":
        method = (
            "expansion"
            if len(miter.target_pis) <= max_expansion_targets
            else "qbf"
        )
    if method == "expansion":
        with obs.span("feasibility.expansion"):
            result = _check_by_expansion(miter, budget_conflicts)
    elif method == "qbf":
        with obs.span("feasibility.qbf"):
            result = _check_by_qbf(miter, budget_conflicts)
    else:
        raise ValueError(f"unknown feasibility method {method!r}")
    obs.inc("feasibility.checks")
    obs.inc("feasibility.copies", result.copies)
    return result


def _check_by_expansion(
    miter: EcoMiter, budget_conflicts: Optional[int]
) -> FeasibilityResult:
    qm = build_quantified_miter(miter, current_target_pi=None)
    solver = solver_for(QueryTraits(incremental=False))
    varmap = encode_network(solver, qm.net)
    out_var = varmap[dict(qm.net.pos)[QMITER_PO]]
    try:
        sat = solver.solve([mklit(out_var)], budget_conflicts=budget_conflicts)
    except SatBudgetExceeded:
        return FeasibilityResult(
            feasible=None, method="expansion", copies=qm.num_copies
        )
    if not sat:
        return FeasibilityResult(
            feasible=True, method="expansion", copies=qm.num_copies
        )
    # witness in terms of the original miter x PIs
    witness = {}
    for orig, new in zip(miter.x_pis, qm.x_pis):
        witness[orig] = solver.model_value(mklit(varmap[new]))
    return FeasibilityResult(
        feasible=False,
        witness=witness,
        method="expansion",
        copies=qm.num_copies,
    )


def _check_by_qbf(
    miter: EcoMiter, budget_conflicts: Optional[int]
) -> FeasibilityResult:
    try:
        res = solve_exists_forall(
            miter.net,
            exists_pis=miter.x_pis,
            forall_pis=miter.target_pis,
            budget_conflicts=budget_conflicts,
        )
    except (QbfBudgetExceeded, SatBudgetExceeded):
        return FeasibilityResult(feasible=None, method="qbf")
    return FeasibilityResult(
        feasible=not res.is_sat,
        witness=res.witness,
        countermoves=res.countermoves,
        method="qbf",
        copies=res.iterations,
    )


class FeasibilityPass(Pass):
    """Target-sufficiency check (Section 3.2): Figure 2's first decision.

    Outputs outside the pruning window cannot be influenced by any patch,
    so they must already match; then expression (1) over the windowed
    miter decides whether the freed targets suffice.  Raises
    :class:`EcoInfeasibleError` (which propagates out of the pipeline —
    infeasibility is a verdict, not a fallback) and leaves the
    :class:`FeasibilityResult` plus name-keyed QBF countermoves on the
    context for the SAT flow and the certificate construction.
    """

    name = "feasibility"
    contract = contract(
        reads=("instance", "base_impl", "spec", "window", "target_ids"),
        writes=("feasibility", "countermoves_by_name"),
        uses_solver=True,
    )

    def run(self, ctx: "EcoContext") -> PassOutcome:
        from .verify import cec

        cfg = ctx.config
        instance = ctx.instance
        assert ctx.window is not None
        with ctx.budget.metered() as cap:
            non_window = [
                i
                for i in range(ctx.base_impl.num_pos)
                if i not in set(ctx.window.po_indices)
            ]
            if non_window:
                outside = cec(
                    ctx.base_impl,
                    ctx.spec,
                    budget_conflicts=cap,
                    po_indices=non_window,
                )
                if outside.equivalent is False:
                    raise EcoInfeasibleError(
                        f"{instance.name}: outputs outside the targets' fanout "
                        f"already differ (cex={outside.counterexample})"
                    )
            miter0 = build_miter(
                ctx.base_impl, ctx.spec, ctx.target_ids, ctx.window.po_indices
            )
            feas = check_feasibility(
                miter0,
                method=cfg.feasibility_method,
                budget_conflicts=cap,
                max_expansion_targets=cfg.max_expansion_targets,
            )
        if feas.feasible is False:
            raise EcoInfeasibleError(
                f"{instance.name}: targets cannot rectify the implementation"
            )
        ctx.feasibility = feas
        ctx.stats.feasibility_copies = feas.copies
        if feas.feasible is None:
            # budget ran out: assume feasibility and go structural (§3.2)
            ctx.stats.bump("feasibility_unknown")
            obs.inc("engine.feasibility_unknown")
        ctx.countermoves_by_name = [
            {
                instance.targets[i]: move.get(pi, 0)
                for i, pi in enumerate(miter0.target_pis)
            }
            for move in feas.countermoves
        ]
        return PassOutcome(detail=feas.method)
