"""Interpolation-based patch computation (the [15] baseline).

Before this paper, the standard way to derive the patch function was
Craig interpolation over expression (3):

    [M(0, x1) & R(d, x1)]  &  [M(1, x2) & R(d, x2)]

with the divisor variables d as the only shared variables.  The
interpolant of the (UNSAT) conjunction is a valid patch.  The paper
replaces this with cube enumeration (Section 3.5); benchmark E6
compares the two.

Variable sharing is realized by *forcing* the divisor nodes of both
miter copies onto the same solver variables (so d = D(x1) lives in
partition A and d = D(x2) in partition B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..network.network import Network
from ..sat.interpolate import interpolant
from ..sat.backend import QueryTraits, solver_for
from ..sat.solver import SatBudgetExceeded
from ..sat.tseitin import encode_network
from ..sat.types import mklit
from .quantify import QMITER_PO, QuantifiedMiter
from .structural import _extract_output


class InterpolationPatchError(Exception):
    """Raised when no interpolant patch can be derived."""


@dataclass
class InterpolationPatchResult:
    """An interpolant patch and its accounting."""

    network: Network
    support: List[str]
    gate_count: int
    proof_clauses: int


def interpolation_patch(
    qm: QuantifiedMiter,
    support_ids: Sequence[int],
    names: Dict[int, str],
    budget_conflicts: Optional[int] = None,
) -> InterpolationPatchResult:
    """Derive the patch for ``qm``'s current target by interpolation.

    Args:
        qm: quantified miter with the current target still free.
        support_ids: implementation node ids of the chosen divisors.
        names: id → signal name (for the patch's PI names).
        budget_conflicts: SAT budget for the refutation.

    Returns:
        an :class:`InterpolationPatchResult` whose network's PIs are the
        divisor names.
    """
    if qm.target_pi is None:
        raise ValueError("quantified miter has no current target")
    solver = solver_for(QueryTraits(incremental=False, needs_proof=True))
    po_node = dict(qm.net.pos)[QMITER_PO]

    def encode_copy(force: Dict[int, int]) -> Tuple[Dict[int, int], List[int]]:
        start = solver._next_cid
        varmap = encode_network(solver, qm.net, force_vars=force)
        end = solver._next_cid
        return varmap, list(range(start, end))

    # copy 1 (partition A): fresh divisor vars, recorded for sharing
    vars1, a_cids = encode_copy({})
    shared = {
        qm.divisor_nodes[i]: vars1[qm.divisor_nodes[i]] for i in support_ids
    }
    # copy 2 (partition B): divisor nodes forced onto copy-1 variables
    vars2, b_cids = encode_copy(shared)

    # unit constraints: A asserts the onset side, B the offset side
    for lits, acc in (
        ([mklit(vars1[po_node])], a_cids),
        ([mklit(vars1[qm.target_pi], True)], a_cids),
        ([mklit(vars2[po_node])], b_cids),
        ([mklit(vars2[qm.target_pi])], b_cids),
    ):
        solver.add_clause(lits)
        acc.append(solver.last_clause_cid)

    try:
        sat = solver.solve(budget_conflicts=budget_conflicts)
    except SatBudgetExceeded as exc:
        raise InterpolationPatchError("refutation budget exhausted") from exc
    if sat:
        raise InterpolationPatchError(
            "expression (3) is satisfiable: divisors insufficient"
        )

    var_names = {
        vars1[qm.divisor_nodes[i]]: names[i] for i in support_ids
    }
    net, _ = interpolant(solver, a_cids, b_cids, var_names)
    net = _extract_output(net, "itp", "itp")  # strash + sweep unused PIs
    support = [net.node(pi).name for pi in net.pis]
    return InterpolationPatchResult(
        network=net,
        support=support,
        gate_count=net.num_gates,
        proof_clauses=len(solver.proof_chains),
    )
