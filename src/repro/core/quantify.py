"""Universal quantification of targets by cofactor expansion (Section 3.1).

Processing targets one at a time requires the miter ``M_i(n_i, x)`` in
which every *other* unprocessed target is universally quantified:
``∀R M = AND over assignments a of M with R fixed to a``.

Full expansion doubles the circuit per quantified variable.  The
expansion set can instead be restricted to the countermoves harvested
from a CEGAR 2QBF feasibility run (Section 3.6.2) — an
under-approximation of the quantification that is sound for patch
computation (a patch satisfying the stronger constraints satisfies the
true ones) and is validated by the final equivalence check.

The expansion is built through an :class:`~repro.network.strash.AigBuilder`
so logic shared between cofactor copies (in particular every divisor
cone, which never depends on the targets) is constructed once.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..network.network import Network
from ..network.strash import AigBuilder, strash_into
from .miter import EcoMiter

QMITER_PO = "qmiter"


@dataclass
class QuantifiedMiter:
    """Expansion product of miter cofactors for one current target.

    Attributes:
        net: network whose PO ``qmiter`` is ``AND_a M(n_i, a, x)``; extra
            POs ``__div<i>`` expose the divisor functions so they stay in
            any CNF encoding even when outside the difference cone.
        x_pis: net PI ids for the shared inputs, by miter PI order.
        target_pi: net PI id of the current (un-quantified) target, or
            None if the current target did not survive (degenerate).
        divisor_nodes: implementation node id → net node id for every
            tracked divisor.
        num_copies: number of miter cofactor copies expanded.
    """

    net: Network
    x_pis: List[int]
    target_pi: Optional[int]
    divisor_nodes: Dict[int, int]
    num_copies: int


def enumerate_assignments(pis: Sequence[int]) -> List[Dict[int, int]]:
    """All 2^k assignments over the given miter target PIs."""
    out: List[Dict[int, int]] = []
    for bits in itertools.product((0, 1), repeat=len(pis)):
        out.append(dict(zip(pis, bits)))
    return out


def build_quantified_miter(
    miter: EcoMiter,
    current_target_pi: Optional[int],
    assignments: Optional[Sequence[Dict[int, int]]] = None,
    divisors: Optional[Dict[int, int]] = None,
) -> QuantifiedMiter:
    """Quantify every freed target except ``current_target_pi``.

    Args:
        miter: the ECO miter with the unprocessed targets freed.
        current_target_pi: miter PI id of the target being solved, or
            None to quantify *all* targets (the feasibility check of
            Section 3.2).
        assignments: expansion set over the *other* target PIs; defaults
            to the full enumeration.
        divisors: map implementation-node-id → miter-node-id for the
            divisor signals to track (usually a restriction of
            ``miter.impl_map``).

    Returns:
        a :class:`QuantifiedMiter`.
    """
    others = [t for t in miter.target_pis if t != current_target_pi]
    if assignments is None:
        assignments = enumerate_assignments(others)
    if not others:
        assignments = [dict()]

    builder = AigBuilder()
    x_lits = {pi: builder.add_pi() for pi in miter.x_pis}
    target_lit = builder.add_pi() if current_target_pi is not None else None
    po_node = miter.net.pos[0][1]

    copy_outputs: List[int] = []
    divisor_lits: Dict[int, int] = {}
    for copy_idx, assign in enumerate(assignments):
        pi_lits = dict(x_lits)
        if current_target_pi is not None and target_lit is not None:
            pi_lits[current_target_pi] = target_lit
        for t in others:
            pi_lits[t] = (
                AigBuilder.CONST1 if assign.get(t, 0) else AigBuilder.CONST0
            )
        litmap = strash_into(builder, miter.net, pi_lits)
        copy_outputs.append(litmap[po_node])
        if copy_idx == 0 and divisors:
            for impl_nid, miter_nid in divisors.items():
                divisor_lits[impl_nid] = litmap[miter_nid]

    qlit = builder.and_many(copy_outputs)
    outputs: List[Tuple[str, int]] = [(QMITER_PO, qlit)]
    div_order = sorted(divisor_lits)
    for i, impl_nid in enumerate(div_order):
        outputs.append((f"__div{i}", divisor_lits[impl_nid]))

    pi_names = [miter.net.node(pi).name for pi in miter.x_pis]
    if target_lit is not None:
        pi_names.append("__current")
    net, litmap = builder.to_network(outputs, pi_names, name="qmiter")
    x_pis = [net.node_by_name(miter.net.node(pi).name) for pi in miter.x_pis]
    target_node = litmap.get(target_lit) if target_lit is not None else None
    divisor_nodes = {
        impl_nid: litmap[divisor_lits[impl_nid]] for impl_nid in div_order
    }
    return QuantifiedMiter(
        net=net,
        x_pis=x_pis,
        target_pi=target_node,
        divisor_nodes=divisor_nodes,
        num_copies=len(assignments),
    )
