"""SAT-based exact pruning of the patch support (Section 3.4.2).

``SAT_prune`` finds a *minimum*-cost divisor subset (not merely minimal)
for one target rectification.  Feasibility of a subset S is the UNSAT-
ness of expression (2) restricted to S — a monotone property (supersets
of feasible sets stay feasible), which the search exploits exactly as
the paper describes:

* a growing family of *blocking clauses* rules out every divisor subset
  known infeasible (each failed check is optionally grown to a maximal
  infeasible set, strengthening the clause);
* a *cost bound* prunes candidates that cannot beat the incumbent;
* the search terminates when the pruned space is exhausted ("the solver
  returns UNSAT"), proving the incumbent minimum.

Candidate subsets are produced in non-decreasing cost order by an exact
min-cost hitting-set engine over the blocking clauses, so the first
feasible candidate is optimal.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .. import obs
from .pipeline import Pass, PassOutcome, contract

if TYPE_CHECKING:  # pragma: no cover
    from .pipeline import EcoContext


@dataclass
class SatPruneStats:
    """Instrumentation for one SAT_prune run."""

    feasibility_checks: int = 0
    blocking_clauses: int = 0
    grow_steps: int = 0
    candidates_enumerated: int = 0


class _HittingSetEnumerator:
    """Enumerates hitting sets of a clause family in cost order.

    Clauses are "pick at least one divisor outside the infeasible set";
    states are (cost, chosen-set) pairs explored best-first.  The
    enumeration is restartable: :meth:`add_clause` invalidates emitted
    states lazily (they are re-checked on pop).
    """

    def __init__(self, items: Sequence[int], cost: Dict[int, int]) -> None:
        self.items = sorted(items, key=lambda i: (cost[i], i))
        self.cost = cost
        self.clauses: List[FrozenSet[int]] = []
        self._heap: List[Tuple[int, Tuple[int, ...], FrozenSet[int]]] = [
            (0, (), frozenset())
        ]
        self._emitted: Set[FrozenSet[int]] = set()
        self._pushed: Set[FrozenSet[int]] = {frozenset()}

    def add_clause(self, clause: FrozenSet[int]) -> None:
        self.clauses.append(clause)
        # already-emitted states that violate the new clause must return
        # to the frontier so their extensions get enumerated
        cost = self.cost
        for state in list(self._emitted):
            if not (clause & state):
                self._emitted.discard(state)
                total = sum(cost[i] for i in state)
                heapq.heappush(
                    self._heap, (total, tuple(sorted(state)), state)
                )

    def _violated(self, chosen: FrozenSet[int]) -> Optional[FrozenSet[int]]:
        for clause in self.clauses:
            if not (clause & chosen):
                return clause
        return None

    def next_candidate(self, bound: Optional[int]) -> Optional[FrozenSet[int]]:
        """Next cheapest set satisfying all clauses, or None.

        ``bound``: stop (return None) once every open state costs
        at least the bound.
        """
        while self._heap:
            total, _, chosen = heapq.heappop(self._heap)
            if bound is not None and total >= bound:
                return None
            if chosen in self._emitted:
                continue
            violated = self._violated(chosen)
            if violated is None:
                self._emitted.add(chosen)
                return chosen
            # branch on each way to satisfy the violated clause
            for item in sorted(violated, key=lambda i: (self.cost[i], i)):
                if item in chosen:
                    continue
                child = chosen | {item}
                if child in self._pushed:
                    continue
                self._pushed.add(child)
                heapq.heappush(
                    self._heap,
                    (total + self.cost[item], tuple(sorted(child)), child),
                )
        return None


def sat_prune(
    divisors: Sequence[int],
    cost: Dict[int, int],
    is_feasible: Callable[[Sequence[int]], bool],
    initial_solution: Optional[Sequence[int]] = None,
    grow: bool = True,
    max_checks: int = 20000,
    stats: Optional[SatPruneStats] = None,
) -> Optional[List[int]]:
    """Find a minimum-cost feasible divisor subset.

    Args:
        divisors: candidate ids.
        cost: id → cost.
        is_feasible: oracle; True when the subset admits a patch
            (expression (2) UNSAT over the subset).
        initial_solution: optional incumbent (e.g. from Algorithm 1) to
            seed the cost bound.
        grow: grow infeasible subsets to maximal ones before blocking
            (fewer, stronger clauses at the price of extra checks).
        max_checks: feasibility-oracle budget; on exhaustion the best
            incumbent (possibly None) is returned.

    Returns:
        the minimum-cost subset, or None if no subset is feasible.
    """
    stats = stats if stats is not None else SatPruneStats()
    with obs.span("satprune.search"):
        try:
            return _sat_prune(
                divisors, cost, is_feasible, initial_solution, grow, max_checks, stats
            )
        finally:
            obs.inc("satprune.feasibility_checks", stats.feasibility_checks)
            obs.inc("satprune.blocking_clauses", stats.blocking_clauses)
            obs.inc("satprune.grow_steps", stats.grow_steps)
            obs.inc("satprune.candidates", stats.candidates_enumerated)


def _sat_prune(
    divisors: Sequence[int],
    cost: Dict[int, int],
    is_feasible: Callable[[Sequence[int]], bool],
    initial_solution: Optional[Sequence[int]],
    grow: bool,
    max_checks: int,
    stats: SatPruneStats,
) -> Optional[List[int]]:
    items = list(divisors)
    enum = _HittingSetEnumerator(items, cost)

    best: Optional[List[int]] = None
    best_cost: Optional[int] = None
    if initial_solution is not None:
        best = list(initial_solution)
        best_cost = sum(cost[i] for i in set(best))

    while stats.feasibility_checks < max_checks:
        candidate = enum.next_candidate(best_cost)
        stats.candidates_enumerated += 1
        if candidate is None:
            return best  # space exhausted under the bound: optimal
        stats.feasibility_checks += 1
        if is_feasible(sorted(candidate)):
            cand_cost = sum(cost[i] for i in candidate)
            if best_cost is None or cand_cost < best_cost:
                best = sorted(candidate)
                best_cost = cand_cost
            # the enumerator is cost-ordered, so this is optimal
            return best
        blocked = set(candidate)
        if grow:
            for item in items:
                if stats.feasibility_checks >= max_checks:
                    break
                if item in blocked:
                    continue
                stats.feasibility_checks += 1
                stats.grow_steps += 1
                if not is_feasible(sorted(blocked | {item})):
                    blocked.add(item)
        complement = frozenset(i for i in items if i not in blocked)
        if not complement:
            # every divisor together is infeasible: no solution at all
            return best
        enum.add_clause(complement)
        stats.blocking_clauses += 1
    return best


class SatPrunePass(Pass):
    """Exact minimum-cost refinement of the chosen support (§3.4.2).

    Consumes the subset-feasibility oracle and the incumbent support the
    ``support`` pass left on ``ctx.target``; keeps the incumbent when
    the search budget runs out without proving a cheaper subset.
    """

    name = "satprune"
    contract = contract(
        reads=("target.divisors", "target.support_ids"),
        # tolerates a missing oracle (skips); reads it when present
        reads_optional=("target.feasible_ids",),
        writes=("target.support_ids",),
        uses_solver=True,
    )

    def run(self, ctx: "EcoContext") -> PassOutcome:
        tgt = ctx.target
        assert tgt is not None
        if tgt.feasible_ids is None:
            return PassOutcome("skipped", "no feasibility oracle")
        cfg = ctx.config
        pstats = SatPruneStats()
        with ctx.budget.metered():
            best = sat_prune(
                list(tgt.divisors.ids),
                tgt.divisors.cost,
                tgt.feasible_ids,
                initial_solution=tgt.support_ids,
                grow=cfg.satprune_grow,
                max_checks=cfg.satprune_max_checks,
                stats=pstats,
            )
        ctx.stats.bump("satprune_checks", pstats.feasibility_checks)
        if best is not None:
            tgt.support_ids = list(best)
        obs.annotate("support_size", len(tgt.support_ids))
        return PassOutcome(detail=f"{pstats.feasibility_checks} checks")
