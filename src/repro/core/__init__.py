"""The paper's contribution: SAT-based ECO patch-function computation."""

from .cegarmin import CegarMinResult, Equivalence, cegar_min
from .divisors import DivisorSet, clear_extraction_memo, collect_divisors
from .engine import (
    EcoConfig,
    EcoEngine,
    EcoEngineError,
    baseline_config,
    best_config,
    build_pipeline,
    contest_config,
    pipeline_stages,
)
from .pipeline import (
    STAGE_NAMES,
    ConflictBudget,
    EcoContext,
    EngineStats,
    Pass,
    PassManager,
    PassOutcome,
    PassSelection,
    Pipeline,
    SatContext,
    TargetState,
    parse_pass_selection,
)
from .feasibility import EcoInfeasibleError, FeasibilityResult, check_feasibility
from .interp import (
    InterpolationPatchError,
    InterpolationPatchResult,
    interpolation_patch,
)
from .localize import (
    LocalizationResult,
    localize_targets,
    rank_single_fix_candidates,
)
from .miter import MITER_PO, EcoMiter, build_miter
from .patch import EcoResult, Patch, apply_patch, apply_patches
from .patchfunc import (
    EnumerationStats,
    PatchEnumerationError,
    enumerate_patch_sop,
)
from .quantify import (
    QMITER_PO,
    QuantifiedMiter,
    build_quantified_miter,
    enumerate_assignments,
)
from .resub import ResubResult, resubstitute
from .satprune import SatPruneStats, sat_prune
from .structural import (
    StructuralPatchInfo,
    certificate_patches,
    structural_patch_single,
)
from .support import (
    AssumptionMinimizer,
    SupportStats,
    analyze_final_core,
    last_gasp_improvement,
    minimize_assumptions,
    minimize_linear,
)
from .verify import CecResult, cec

__all__ = [
    "AssumptionMinimizer",
    "CecResult",
    "CegarMinResult",
    "ConflictBudget",
    "DivisorSet",
    "EcoConfig",
    "EcoContext",
    "EcoEngine",
    "EcoEngineError",
    "EcoInfeasibleError",
    "EcoMiter",
    "EcoResult",
    "EngineStats",
    "EnumerationStats",
    "Equivalence",
    "FeasibilityResult",
    "InterpolationPatchError",
    "InterpolationPatchResult",
    "LocalizationResult",
    "MITER_PO",
    "Pass",
    "PassManager",
    "PassOutcome",
    "PassSelection",
    "Patch",
    "PatchEnumerationError",
    "Pipeline",
    "QMITER_PO",
    "QuantifiedMiter",
    "ResubResult",
    "STAGE_NAMES",
    "SatContext",
    "SatPruneStats",
    "StructuralPatchInfo",
    "SupportStats",
    "TargetState",
    "analyze_final_core",
    "apply_patch",
    "apply_patches",
    "baseline_config",
    "best_config",
    "build_miter",
    "build_pipeline",
    "build_quantified_miter",
    "cec",
    "cegar_min",
    "certificate_patches",
    "check_feasibility",
    "clear_extraction_memo",
    "collect_divisors",
    "contest_config",
    "enumerate_assignments",
    "enumerate_patch_sop",
    "interpolation_patch",
    "last_gasp_improvement",
    "localize_targets",
    "rank_single_fix_candidates",
    "minimize_assumptions",
    "minimize_linear",
    "parse_pass_selection",
    "pipeline_stages",
    "resubstitute",
    "sat_prune",
    "structural_patch_single",
]
