"""ECO miter construction (paper Figure 1).

The miter compares the implementation — with its target nodes cut out
and replaced by free PI variables n — against the specification, pairing
POs by name and OR-ing the XOR of each compared pair.  ``M(n, x) = 1``
iff the two netlists differ on some compared output for input x and
target values n.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..network.network import Network
from ..network.node import GateType

MITER_PO = "miter"


@dataclass
class EcoMiter:
    """The miter network plus the node maps the ECO algorithms need.

    Attributes:
        net: the miter network; PO ``miter`` is the difference signal.
        impl_map: implementation node id → miter node id (the
            implementation copy inside the miter, with targets freed).
        spec_map: specification node id → miter node id.
        target_pis: miter PI ids standing for the freed targets, in the
            order the targets were given.
        x_pis: miter PI ids of the shared circuit inputs.
    """

    net: Network
    impl_map: Dict[int, int]
    spec_map: Dict[int, int]
    target_pis: List[int]
    x_pis: List[int]


def build_miter(
    impl: Network,
    spec: Network,
    targets: Sequence[int],
    po_indices: Optional[Sequence[int]] = None,
) -> EcoMiter:
    """Construct the ECO miter for ``targets`` (implementation node ids).

    ``po_indices`` restricts the compared outputs (the windowing of
    Section 3.3); by default every PO is compared.  PI and PO matching is
    by name.
    """
    impl_pos = impl.pos
    spec_po_map = {name: nid for name, nid in spec.pos}
    if po_indices is None:
        po_indices = range(len(impl_pos))
    compared = [(impl_pos[i][0], impl_pos[i][1]) for i in po_indices]
    for name, _ in compared:
        if name not in spec_po_map:
            raise ValueError(f"specification lacks output {name!r}")

    net = Network("eco_miter")
    x_by_name: Dict[str, int] = {}
    for pi in impl.pis:
        x_by_name[impl.node(pi).name] = net.add_pi(impl.node(pi).name)
    for pi in spec.pis:
        name = spec.node(pi).name
        if name not in x_by_name:
            x_by_name[name] = net.add_pi(name)
    x_pis = list(x_by_name.values())

    impl_input_map = {pi: x_by_name[impl.node(pi).name] for pi in impl.pis}
    impl_map = net.append(impl, impl_input_map)
    # free the targets: each becomes a fresh PI inside the miter; the
    # map is updated so references to the target (including compared
    # POs) point at the free variable, not the old dangling driver
    target_pis: List[int] = []
    for idx, t in enumerate(targets):
        pi = net.free_pi_for(impl_map[t], f"__target{idx}")
        impl_map[t] = pi
        target_pis.append(pi)

    spec_input_map = {pi: x_by_name[spec.node(pi).name] for pi in spec.pis}
    spec_map = net.append(spec, spec_input_map)

    xors: List[int] = []
    for name, impl_nid in compared:
        a = impl_map[impl_nid]
        b = spec_map[spec_po_map[name]]
        xors.append(net.add_gate(GateType.XOR, [a, b]))
    if not xors:
        out = net.add_const(0)
    elif len(xors) == 1:
        out = xors[0]
    else:
        out = _or_tree(net, xors)
    net.add_po(out, MITER_PO)
    return EcoMiter(
        net=net,
        impl_map=impl_map,
        spec_map=spec_map,
        target_pis=target_pis,
        x_pis=x_pis,
    )


def _or_tree(net: Network, nodes: List[int]) -> int:
    work = list(nodes)
    while len(work) > 1:
        nxt = [
            net.add_gate(GateType.OR, [work[i], work[i + 1]])
            for i in range(0, len(work) - 1, 2)
        ]
        if len(work) % 2:
            nxt.append(work[-1])
        work = nxt
    return work[0]
