"""SAT substrate: CDCL solver, CNF encoding, proofs, interpolation."""

from .backend import (
    BackendError,
    BackendSelector,
    DimacsProcessBackend,
    NativeBackend,
    QueryTraits,
    SolverBackend,
    available_backends,
    current_selector,
    get_backend,
    install_selector,
    register_backend,
    solver_for,
    unregister_backend,
)
from .cardinality import Totalizer
from .interpolate import InterpolationError, interpolant
from .proof import ProofError, check_proof, derive_clause, resolve
from .simplify import Preprocessor, PreprocessorError
from .solver import (
    SatBudgetExceeded,
    SatDeadlineExceeded,
    Solver,
    set_solve_deadline,
    solve_deadline,
)
from .template import CnfTemplate
from .tseitin import add_equality, encode_gate, encode_network
from .types import (
    clause_from_dimacs,
    from_dimacs,
    is_negated,
    lit_var,
    mklit,
    neg,
    to_dimacs,
)

__all__ = [
    "BackendError",
    "BackendSelector",
    "CnfTemplate",
    "DimacsProcessBackend",
    "NativeBackend",
    "QueryTraits",
    "SolverBackend",
    "InterpolationError",
    "Preprocessor",
    "PreprocessorError",
    "ProofError",
    "SatBudgetExceeded",
    "SatDeadlineExceeded",
    "Solver",
    "Totalizer",
    "add_equality",
    "available_backends",
    "check_proof",
    "clause_from_dimacs",
    "current_selector",
    "derive_clause",
    "encode_gate",
    "encode_network",
    "from_dimacs",
    "get_backend",
    "install_selector",
    "interpolant",
    "is_negated",
    "lit_var",
    "mklit",
    "neg",
    "register_backend",
    "resolve",
    "set_solve_deadline",
    "solve_deadline",
    "solver_for",
    "to_dimacs",
    "unregister_backend",
]
