"""SAT substrate: CDCL solver, CNF encoding, proofs, interpolation."""

from .cardinality import Totalizer
from .interpolate import InterpolationError, interpolant
from .proof import ProofError, check_proof, derive_clause, resolve
from .simplify import Preprocessor, PreprocessorError
from .solver import (
    SatBudgetExceeded,
    SatDeadlineExceeded,
    Solver,
    set_solve_deadline,
    solve_deadline,
)
from .template import CnfTemplate
from .tseitin import add_equality, encode_gate, encode_network
from .types import (
    clause_from_dimacs,
    from_dimacs,
    is_negated,
    lit_var,
    mklit,
    neg,
    to_dimacs,
)

__all__ = [
    "CnfTemplate",
    "InterpolationError",
    "Preprocessor",
    "PreprocessorError",
    "ProofError",
    "SatBudgetExceeded",
    "SatDeadlineExceeded",
    "Solver",
    "Totalizer",
    "add_equality",
    "check_proof",
    "clause_from_dimacs",
    "derive_clause",
    "encode_gate",
    "encode_network",
    "from_dimacs",
    "interpolant",
    "is_negated",
    "lit_var",
    "mklit",
    "neg",
    "resolve",
    "set_solve_deadline",
    "solve_deadline",
    "to_dimacs",
]
