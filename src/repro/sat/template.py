"""Compiled CNF templates: encode a network once, stamp it many times.

The ECO flow encodes the *same* network repeatedly — two miter copies
for the support computation, two more for the patch-function cubes, one
per CEGAR counterexample in the 2QBF engine.  ``encode_network`` walks
the graph and dispatches per gate type on every call; a
:class:`CnfTemplate` does that walk exactly once, storing the result as
flat integer clause tuples over a dense variable space ``0..nvars-1``.
:meth:`CnfTemplate.stamp` then copies the clauses into a solver by pure
literal arithmetic — bulk variable allocation plus one addition per
literal, no graph traversal, no per-gate dispatch.

Binding semantics (they differ from ``encode_network`` for internal
nodes, because a template cannot un-emit clauses):

* ``pi_vars`` pre-binds primary inputs to existing solver variables —
  identical to ``encode_network``'s ``pi_vars`` (PIs contribute no
  clauses).  Keys must be PIs; anything else raises ``ValueError``.
* ``force_vars`` binds *any* node to an existing variable while its gate
  clauses are still emitted — ``encode_network``'s ``force_vars``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..network.network import Network
from ..obs import DEFAULT as _OBS
from .solver import Solver
from .tseitin import encode_network


class _TemplateRecorder:
    """Duck-typed solver that records the encoding instead of solving.

    ``encode_network`` only needs ``new_var`` and ``add_clause``; this
    sink captures the allocation order and the clause list, which
    together *are* the template.
    """

    __slots__ = ("nvars", "clauses")

    def __init__(self) -> None:
        self.nvars = 0
        self.clauses: List[Tuple[int, ...]] = []

    def new_var(self) -> int:
        v = self.nvars
        self.nvars += 1
        return v

    def new_vars(self, n: int) -> List[int]:
        base = self.nvars
        self.nvars += n
        return list(range(base, base + n))

    def add_clause(self, lits) -> bool:
        self.clauses.append(tuple(lits))
        return True


class CnfTemplate:
    """A network's Tseitin encoding, compiled for repeated stamping.

    Attributes:
        varmap: node id → template variable (dense, ``0..nvars-1``).
        nvars: template variable count (includes XOR-chain auxiliaries).
        clauses: the encoding as tuples of packed literals over template
            variables.
    """

    __slots__ = ("varmap", "nvars", "clauses", "pi_nodes")

    def __init__(self, net: Network) -> None:
        rec = _TemplateRecorder()
        self.varmap: Dict[int, int] = encode_network(rec, net)  # type: ignore[arg-type]
        self.nvars = rec.nvars
        self.clauses = rec.clauses
        self.pi_nodes = frozenset(n.nid for n in net.topo_order() if n.is_pi)
        _OBS.inc("sat.template_compiles")

    @classmethod
    def from_compiled(
        cls,
        varmap: Dict[int, int],
        nvars: int,
        clauses: Sequence[Sequence[int]],
        pi_nodes: Iterable[int],
    ) -> "CnfTemplate":
        """Rehydrate a template from already-compiled parts.

        Used by the batch arena (:mod:`repro.batch.arena`) to attach a
        template whose clauses live in shared memory: ``clauses`` may be
        any sequence of int sequences — :meth:`stamp` only iterates and
        ``len()``s it, so an arena view is read in place, zero-copy.
        Deliberately does *not* bump ``sat.template_compiles``: no
        encoding happened here, and the batch acceptance audit counts
        that counter to prove workers never re-encode.
        """
        tpl = object.__new__(cls)
        tpl.varmap = dict(varmap)
        tpl.nvars = int(nvars)
        tpl.clauses = clauses  # type: ignore[assignment]
        tpl.pi_nodes = frozenset(pi_nodes)
        return tpl

    def stamp(
        self,
        solver: Solver,
        pi_vars: Optional[Dict[int, int]] = None,
        force_vars: Optional[Dict[int, int]] = None,
        group: Optional[int] = None,
    ) -> Dict[int, int]:
        """Copy the template into ``solver``; returns node id → solver var.

        Fresh variables are bulk-allocated; each clause literal is mapped
        by array lookup (or, with no bindings at all, by a constant
        offset).  With ``group`` given every stamped clause joins that
        retractable group.

        When a bound variable holds a root-level constant (and no group
        is requested), the stamp *cofactors* instead of copying: the
        constants are propagated through the compiled clauses in template
        space — satisfied clauses are dropped, false literals stripped,
        template-level units are recorded without touching the solver —
        and only the surviving cofactor is materialized.  Nodes the
        constants decide are mapped to shared constant variables, so the
        solver never sees the dead cone.  This is how each 2QBF CEGAR
        refinement lands as a small cofactor rather than a full circuit
        copy.
        """
        binds: Dict[int, int] = {}
        if pi_vars:
            for nid, var in pi_vars.items():
                if nid not in self.pi_nodes:
                    raise ValueError(
                        f"pi_vars key {nid} is not a PI; use force_vars "
                        "(its gate clauses are still emitted)"
                    )
                binds[self.varmap[nid]] = var
        if force_vars:
            for nid, var in force_vars.items():
                binds[self.varmap[nid]] = var

        glit = None
        if group is not None:
            if group not in solver._active_groups:
                raise ValueError(f"group {group} is not open")
            glit = group * 2 + 1

        add = solver.add_compiled_clause
        if not binds:
            # pure offset: template var v becomes solver var base + v,
            # so literal l maps to l + 2*base
            base = solver.add_vars(self.nvars)
            off = base << 1
            if glit is None:
                for clause in self.clauses:
                    add([lit + off for lit in clause])
            else:
                for clause in self.clauses:
                    add([lit + off for lit in clause] + [glit])
            result = {nid: tv + base for nid, tv in self.varmap.items()}
        elif glit is None and not solver._trail_lim and any(
            solver.value(sv << 1) >= 0 for sv in binds.values()
        ):
            result = self._stamp_cofactor(solver, binds)
            _OBS.inc("sat.template_stamps")
            _OBS.inc("sat.template_clauses", len(self.clauses))
            return result
        else:
            vmap = [-1] * self.nvars
            for tv, sv in binds.items():
                vmap[tv] = sv
            base = solver.add_vars(self.nvars - len(binds))
            nxt = base
            for tv in range(self.nvars):
                if vmap[tv] < 0:
                    vmap[tv] = nxt
                    nxt += 1
            if glit is None:
                for clause in self.clauses:
                    add([(vmap[lit >> 1] << 1) | (lit & 1) for lit in clause])
            else:
                for clause in self.clauses:
                    add(
                        [(vmap[lit >> 1] << 1) | (lit & 1) for lit in clause]
                        + [glit]
                    )
            result = {nid: vmap[tv] for nid, tv in self.varmap.items()}
        _OBS.inc("sat.template_stamps")
        _OBS.inc("sat.template_clauses", len(self.clauses))
        return result

    def _stamp_cofactor(
        self, solver: Solver, binds: Dict[int, int]
    ) -> Dict[int, int]:
        """Stamp under constant bindings: propagate, then copy survivors.

        One pass over the compiled clauses (they are in topological
        order, so input constants cascade forward like a cofactor):
        a clause with a true constant literal vanishes, false constant
        literals are stripped, and a clause reduced to a unit over a
        not-yet-materialized variable just records that variable's value
        in template space.  Only clauses with two or more live literals
        (or units over already-materialized variables) reach the solver,
        and only their variables are allocated.
        """
        value = solver.value
        new_var = solver.new_var
        add = solver.add_compiled_clause
        tvals = [-1] * self.nvars
        vmap: List[Optional[int]] = [None] * self.nvars
        for tv, sv in binds.items():
            vmap[tv] = sv
            tvals[tv] = value(sv << 1)
        for clause in self.clauses:
            out: List[int] = []
            fresh: List[int] = []
            sat = False
            for lit in clause:
                tv = lit >> 1
                tval = tvals[tv]
                if tval >= 0:
                    if tval == 1 - (lit & 1):
                        sat = True
                        break
                    continue  # false under the constants: strip
                sv = vmap[tv]
                if sv is None:
                    fresh.append(lit)
                else:
                    out.append((sv << 1) | (lit & 1))
            if sat:
                continue
            if not out and len(fresh) == 1:
                lit = fresh[0]
                tvals[lit >> 1] = 1 - (lit & 1)
                continue
            for lit in fresh:
                sv = new_var()
                vmap[lit >> 1] = sv
                out.append((sv << 1) | (lit & 1))
            add(out)

        # constant-decided nodes map to shared constant variables; reuse
        # the caller's bound constants where a polarity is available
        consts: List[Optional[int]] = [None, None]
        for tv, sv in binds.items():
            tval = tvals[tv]
            if tval >= 0 and consts[tval] is None:
                consts[tval] = sv
        result: Dict[int, int] = {}
        for nid, tv in self.varmap.items():
            sv = vmap[tv]
            if sv is None:
                tval = tvals[tv]
                if tval < 0:
                    sv = new_var()  # dead cone: free variable
                else:
                    sv = consts[tval]
                    if sv is None:
                        sv = new_var()
                        solver.add_clause([(sv << 1) | (1 - tval)])
                        consts[tval] = sv
                vmap[tv] = sv
            result[nid] = sv
        return result


# ---------------------------------------------------------------------------
# template memo + pluggable compiled-template source
# ---------------------------------------------------------------------------
#
# The SAT flow compiles one template per quantified miter; the benchmark
# suite and batch front-end run many structurally identical miters
# (retries, repeated instances, per-method re-runs of one unit), each of
# which used to pay the full ``encode_network`` walk again.  Same
# soundness contract as the extraction memo in ``repro.core.divisors``:
# keys are ``Network.structural_hash()`` and the memo is bypassed unless
# the network has a canonical id layout (equal hash + canonical layout
# make the raw node ids interchangeable, so the compiled ``varmap``
# transfers verbatim).  Templates are immutable once compiled — hits are
# shared, not copied.
#
# ``install_template_source`` plugs an external lookup (the batch
# arena's shared-memory view) in *below* the process-local LRU: a source
# hit is promoted into the memo so repeated stamps stay dictionary-fast.

_TEMPLATE_MEMO_CAPACITY = 64

#: key -> compiled template; bounded LRU, process-local.
_template_memo: "OrderedDict[int, CnfTemplate]" = OrderedDict()

#: external compiled-template lookup (``None`` outside batch workers).
TemplateSource = Callable[[int], Optional[CnfTemplate]]
_template_source: Optional[TemplateSource] = None


def install_template_source(source: Optional[TemplateSource]) -> None:
    """Install (or with ``None`` remove) the process-global fallback
    consulted by :func:`template_for` on a memo miss, keyed by
    ``Network.structural_hash()``.  Batch pool workers install the
    shared-memory arena here from their initializer."""
    global _template_source
    _template_source = source


def clear_template_memo() -> None:
    """Drop every memoized template (tests, tooling)."""
    _template_memo.clear()


def set_template_memo_capacity(capacity: int) -> int:
    """Resize the bounded template memo (``EcoConfig.memo_capacity``).

    Returns the previous capacity; shrinking evicts LRU entries
    immediately.  Capacities below 1 are clamped to 1.
    """
    global _TEMPLATE_MEMO_CAPACITY
    previous = _TEMPLATE_MEMO_CAPACITY
    _TEMPLATE_MEMO_CAPACITY = max(1, capacity)
    while len(_template_memo) > _TEMPLATE_MEMO_CAPACITY:
        _template_memo.popitem(last=False)
    return previous


def template_memo_capacity() -> int:
    """The template memo's current entry bound."""
    return _TEMPLATE_MEMO_CAPACITY


def _memo_store(key: int, tpl: CnfTemplate) -> None:
    _template_memo[key] = tpl
    while len(_template_memo) > _TEMPLATE_MEMO_CAPACITY:
        _template_memo.popitem(last=False)


def template_for(net: Network, memoize: bool = True) -> CnfTemplate:
    """Compiled template for ``net``, via memo/arena when sound.

    With ``memoize`` false, or when ``net`` lacks a canonical id layout
    (making cached ``varmap`` node ids non-transferable), this is just
    ``CnfTemplate(net)``.  Otherwise the process-local LRU is consulted
    first (``engine.template_memo_hit``), then the installed template
    source if any — the batch arena — and only a miss on both compiles
    (``engine.template_memo_miss`` + ``sat.template_compiles``).
    """
    if not (memoize and net.has_canonical_layout()):
        return CnfTemplate(net)
    key = net.structural_hash()
    hit = _template_memo.get(key)
    if hit is not None:
        _template_memo.move_to_end(key)  # LRU touch
        _OBS.inc("engine.template_memo_hit")
        return hit
    if _template_source is not None:
        tpl = _template_source(key)
        if tpl is not None:
            _OBS.inc("engine.template_memo_hit")
            _memo_store(key, tpl)
            return tpl
    _OBS.inc("engine.template_memo_miss")
    tpl = CnfTemplate(net)
    _memo_store(key, tpl)
    return tpl
