"""Resolution-proof reconstruction and checking.

When a :class:`~repro.sat.solver.Solver` runs with ``proof_logging=True``
it records, for every learned clause, the linear resolution chain that
derives it.  This module replays those chains, which serves two purposes:

* validating the solver's proofs in the test suite;
* providing the clause-derivation traversal used by
  :mod:`repro.sat.interpolate`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from .solver import Solver


class ProofError(Exception):
    """Raised when a logged chain is not a valid resolution derivation."""


def resolve(
    c1: FrozenSet[int], c2: FrozenSet[int], pivot: int
) -> FrozenSet[int]:
    """Resolve two clauses (literal sets) on variable ``pivot``."""
    pos = pivot * 2
    neg = pos + 1
    if pos in c1 and neg in c2:
        return (c1 - {pos}) | (c2 - {neg})
    if neg in c1 and pos in c2:
        return (c1 - {neg}) | (c2 - {pos})
    raise ProofError(f"pivot {pivot} does not appear with opposite phases")


def derive_clause(
    solver: Solver, cid: int, cache: Dict[int, FrozenSet[int]]
) -> FrozenSet[int]:
    """Replay the derivation of clause ``cid``; returns its literal set.

    Iterative (explicit worklist): chains reference earlier learned
    clauses, so on deep instances the natural recursion can exceed the
    interpreter's stack limit.
    """
    # (cid, expanded): the first visit pushes the clause's antecedents,
    # the second (expanded=True) resolves them out of the cache
    stack: List[Tuple[int, bool]] = [(cid, False)]
    gray: Set[int] = set()  # clauses on the current expansion path
    while stack:
        top, expanded = stack.pop()
        if expanded:
            chain = solver.proof_chains[top]
            result = cache[chain[0][1]]
            for pivot, other in chain[1:]:
                result = resolve(result, cache[other], pivot)
            cache[top] = result
            gray.discard(top)
            continue
        if top in cache:
            continue
        if top in gray:
            raise ProofError(
                f"clause {top}: derivation chain is cyclic"
            )
        chain = solver.proof_chains.get(top)
        if chain is None:
            # original clause: an axiom
            lits = solver.clause_lits.get(top)
            if lits is None:
                raise ProofError(
                    f"clause {top} has neither literals nor a chain"
                )
            cache[top] = frozenset(lits)
            continue
        gray.add(top)
        stack.append((top, True))
        for _, antecedent in reversed(chain):
            if antecedent not in cache:
                stack.append((antecedent, False))
    return cache[cid]


def check_proof(solver: Solver) -> int:
    """Validate every logged chain; returns the number of checked chains.

    Each learned clause's replayed derivation must match its recorded
    literal set, and — when the solver concluded UNSAT at level 0 — the
    final chain must produce the empty clause.
    """
    if not solver.proof_logging:
        raise ProofError("solver was not run with proof_logging=True")
    cache: Dict[int, FrozenSet[int]] = {}
    checked = 0
    for cid in sorted(solver.proof_chains):
        derived = derive_clause(solver, cid, cache)
        recorded = solver.clause_lits.get(cid)
        if recorded is not None and frozenset(recorded) != derived:
            raise ProofError(
                f"clause {cid}: derived {sorted(derived)} != recorded {sorted(recorded)}"
            )
        checked += 1
    if solver.empty_clause_cid is not None:
        if derive_clause(solver, solver.empty_clause_cid, cache):
            raise ProofError("final chain does not derive the empty clause")
    return checked
