"""Resolution-proof reconstruction and checking.

When a :class:`~repro.sat.solver.Solver` runs with ``proof_logging=True``
it records, for every learned clause, the linear resolution chain that
derives it.  This module replays those chains, which serves two purposes:

* validating the solver's proofs in the test suite;
* providing the clause-derivation traversal used by
  :mod:`repro.sat.interpolate`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from .solver import Solver


class ProofError(Exception):
    """Raised when a logged chain is not a valid resolution derivation."""


def resolve(
    c1: FrozenSet[int], c2: FrozenSet[int], pivot: int
) -> FrozenSet[int]:
    """Resolve two clauses (literal sets) on variable ``pivot``."""
    pos = pivot * 2
    neg = pos + 1
    if pos in c1 and neg in c2:
        return (c1 - {pos}) | (c2 - {neg})
    if neg in c1 and pos in c2:
        return (c1 - {neg}) | (c2 - {pos})
    raise ProofError(f"pivot {pivot} does not appear with opposite phases")


def derive_clause(solver: Solver, cid: int, cache: Dict[int, FrozenSet[int]]) -> FrozenSet[int]:
    """Replay the derivation of clause ``cid``; returns its literal set."""
    hit = cache.get(cid)
    if hit is not None:
        return hit
    chain = solver.proof_chains.get(cid)
    if chain is None:
        # original clause: an axiom
        lits = solver.clause_lits.get(cid)
        if lits is None:
            raise ProofError(f"clause {cid} has neither literals nor a chain")
        result = frozenset(lits)
    else:
        result = derive_clause(solver, chain[0][1], cache)
        for pivot, other in chain[1:]:
            result = resolve(result, derive_clause(solver, other, cache), pivot)
    cache[cid] = result
    return result


def check_proof(solver: Solver) -> int:
    """Validate every logged chain; returns the number of checked chains.

    Each learned clause's replayed derivation must match its recorded
    literal set, and — when the solver concluded UNSAT at level 0 — the
    final chain must produce the empty clause.
    """
    if not solver.proof_logging:
        raise ProofError("solver was not run with proof_logging=True")
    cache: Dict[int, FrozenSet[int]] = {}
    checked = 0
    for cid in sorted(solver.proof_chains):
        derived = derive_clause(solver, cid, cache)
        recorded = solver.clause_lits.get(cid)
        if recorded is not None and frozenset(recorded) != derived:
            raise ProofError(
                f"clause {cid}: derived {sorted(derived)} != recorded {sorted(recorded)}"
            )
        checked += 1
    if solver.empty_clause_cid is not None:
        if derive_clause(solver, solver.empty_clause_cid, cache):
            raise ProofError("final chain does not derive the empty clause")
    return checked
