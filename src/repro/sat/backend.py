"""Pluggable SAT backend layer: per-query solver construction.

Every SAT query in the ECO flow used to instantiate the CDCL
:class:`~repro.sat.solver.Solver` directly, which made a backend swap
(an external CDCL engine, a specialized one-shot solver) impossible
without touching a dozen modules.  This module is the seam: callers
declare *what the query looks like* as :class:`QueryTraits` and acquire
a solver through :func:`solver_for`; which engine actually answers is
decided by the installed :class:`BackendSelector` against a
process-global backend registry.

* :class:`SolverBackend` — the protocol: ``supports(traits)`` +
  ``create(traits)``.
* :class:`NativeBackend` — wraps the in-process CDCL solver; the
  default and the only backend that supports incremental queries,
  retractable groups, and proof logging.  Behavior-preserving: the
  returned solver *is* a :class:`~repro.sat.solver.Solver`
  (``proof_logging`` driven by ``traits.needs_proof``), so solver
  counters stay byte-identical to direct construction.
* :class:`DimacsProcessBackend` — proof that the seam supports an
  external engine: one-shot queries round-trip through a DIMACS file
  and a subprocess solver (standard ``s SATISFIABLE`` / ``v`` output).
  Never registered by default.
* registry — :func:`register_backend` / :func:`get_backend` /
  :func:`available_backends`.
* :class:`BackendSelector` — picks a backend per query: the ``fixed``
  policy always asks for the configured backend, the ``traits`` policy
  routes each query to the first registered backend that supports its
  traits (preferring the configured one).  Either way a backend that
  cannot serve the query falls back to ``native`` (the universal
  engine) with a ``sat.backend.<name>.fallbacks`` counter.

:class:`~repro.core.engine.EcoEngine` installs a selector built from
``EcoConfig.backend`` / ``EcoConfig.backend_policy`` for the duration
of each run (the configuration — a plain dataclass field — survives
pickling into batch pool workers); standalone callers (``repro check``,
:mod:`repro.network.fraig`, DIMACS replay) get the default ``native``
selector.  Direct ``Solver()`` construction outside this module is
banned by lint rule RA007 (see :mod:`repro.analyze.lint`).

Per-backend usage is metered as ``sat.backend.<name>.solves`` /
``sat.backend.<name>.conflicts`` obs counters, alongside (not instead
of) the engine-level ``sat.*`` counters the bench solver breakdown is
built from.
"""

from __future__ import annotations

import shutil
import subprocess
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, cast

from ..obs import DEFAULT as _OBS
from .solver import Solver

__all__ = [
    "BackendError",
    "BackendSelector",
    "DimacsProcessBackend",
    "NativeBackend",
    "QueryTraits",
    "SolverBackend",
    "available_backends",
    "current_selector",
    "get_backend",
    "install_selector",
    "register_backend",
    "solver_for",
    "unregister_backend",
]


class BackendError(Exception):
    """Raised on registry misuse or a backend execution failure."""


@dataclass(frozen=True)
class QueryTraits:
    """What a call site declares about the query it is about to build.

    Attributes:
        incremental: the solver will be solved more than once (learned
            clauses, assumptions, and phase state carry across calls).
        needs_proof: the caller reads proof machinery off the solver
            (``proof_chains`` / clause ids) — interpolation and DRUP
            re-checking.
        needs_groups: the caller opens retractable clause groups.
        expected_vars / expected_clauses: optional size hints (a
            selector policy may route small one-shots differently);
            ``None`` when the caller cannot cheaply estimate them.
    """

    incremental: bool = True
    needs_proof: bool = False
    needs_groups: bool = False
    expected_vars: Optional[int] = None
    expected_clauses: Optional[int] = None


class SolverBackend:
    """Protocol every backend implements (structural, but also usable
    as a base class).  ``create`` returns a solver-compatible object:
    for one-shot traits the required surface is variable allocation,
    clause addition, one ``solve``, and model extraction; incremental /
    proof / group traits require the full native surface."""

    #: registry key and the ``sat.backend.<name>.*`` counter namespace
    name: str = "abstract"

    def supports(self, traits: QueryTraits) -> bool:
        """Can this backend serve a query with the given traits?"""
        raise NotImplementedError

    def create(self, traits: QueryTraits) -> Solver:
        """A fresh solver for one query with the given traits."""
        raise NotImplementedError


class _MeteredSolver(Solver):
    """The native CDCL solver plus per-backend usage metering.

    Identical search behavior — the override only reads two counters
    around the inherited :meth:`~repro.sat.solver.Solver.solve`, so the
    engine-level ``sat.*`` counters (and therefore the bench solver
    breakdown) are byte-identical to a plain :class:`Solver`.
    """

    def __init__(self, backend_name: str, proof_logging: bool = False) -> None:
        super().__init__(proof_logging=proof_logging)
        self._backend_name = backend_name

    def solve(
        self,
        assumptions: Sequence[int] = (),
        budget_conflicts: Optional[int] = None,
    ) -> bool:
        if not _OBS.enabled:
            return super().solve(assumptions, budget_conflicts)
        before = self.stats["conflicts"]
        try:
            return super().solve(assumptions, budget_conflicts)
        finally:
            _OBS.inc(f"sat.backend.{self._backend_name}.solves")
            _OBS.inc(
                f"sat.backend.{self._backend_name}.conflicts",
                self.stats["conflicts"] - before,
            )


class NativeBackend(SolverBackend):
    """The in-process CDCL solver; default, supports every trait."""

    name = "native"

    def supports(self, traits: QueryTraits) -> bool:
        return True

    def create(self, traits: QueryTraits) -> Solver:
        return _MeteredSolver(self.name, proof_logging=traits.needs_proof)


# ---------------------------------------------------------------------------
# external one-shot backend: DIMACS subprocess round-trip
# ---------------------------------------------------------------------------


class DimacsProcessSolver:
    """One-shot solver adapter over an external DIMACS solver process.

    Implements the subset of the :class:`~repro.sat.solver.Solver`
    surface one-shot call sites use: variable allocation
    (``new_var`` / ``new_vars`` / ``add_vars``), clause addition
    (``add_clause`` / ``add_compiled_clause``), a single :meth:`solve`
    (assumptions become unit clauses), and model extraction
    (``model_value`` / ``model``).  A second ``solve`` raises
    :class:`BackendError` — incremental queries must not be routed here
    (the selector guards this via :meth:`DimacsProcessBackend.supports`).
    """

    def __init__(self, command: Sequence[str], backend_name: str) -> None:
        self._command = list(command)
        self._backend_name = backend_name
        self.nvars = 0
        self._clauses: List[Tuple[int, ...]] = []
        self._root_units: Dict[int, int] = {}  # var -> 0/1
        self._ok = True
        self._solved = False
        self.model: List[int] = []
        self.core: set = set()

    # -- variable / clause surface (mirrors Solver) --------------------

    def new_var(self) -> int:
        v = self.nvars
        self.nvars += 1
        return v

    def add_vars(self, n: int) -> int:
        base = self.nvars
        if n > 0:
            self.nvars += n
        return base

    def new_vars(self, n: int) -> List[int]:
        base = self.add_vars(n)
        return list(range(base, base + n))

    def add_clause(
        self, lits: Sequence[int], group: Optional[int] = None
    ) -> bool:
        if group is not None:
            raise BackendError(
                f"backend {self._backend_name!r} does not support"
                " retractable clause groups"
            )
        return self.add_compiled_clause(lits)

    def add_compiled_clause(self, lits: Sequence[int]) -> bool:
        clause = tuple(lits)
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            lit = clause[0]
            want = 1 - (lit & 1)
            have = self._root_units.get(lit >> 1)
            if have is not None and have != want:
                self._ok = False
                return False
            self._root_units[lit >> 1] = want
        self._clauses.append(clause)
        return True

    def value(self, lit: int) -> int:
        """Root-level literal value: 0/1 for recorded units, else -1."""
        val = self._root_units.get(lit >> 1)
        if val is None:
            return -1
        return val ^ (lit & 1)

    # -- one-shot solve -------------------------------------------------

    def solve(
        self,
        assumptions: Sequence[int] = (),
        budget_conflicts: Optional[int] = None,
    ) -> bool:
        if self._solved:
            raise BackendError(
                f"backend {self._backend_name!r} is one-shot: a second"
                " solve on the same instance is not supported"
            )
        self._solved = True
        if not self._ok:
            return False
        clauses = list(self._clauses) + [(lit,) for lit in assumptions]
        sat, model = self._run_process(self.nvars, clauses)
        if sat:
            self.model = model
        else:
            # mirror Solver: UNSAT under assumptions fills the core
            # conservatively (the external engine reports no core)
            self.core = set(assumptions)
        if _OBS.enabled:
            _OBS.inc(f"sat.backend.{self._backend_name}.solves")
            _OBS.inc(f"sat.backend.{self._backend_name}.conflicts", 0)
        return sat

    def model_value(self, lit: int) -> int:
        val = self.model[lit >> 1] if (lit >> 1) < len(self.model) else 0
        if val not in (0, 1):
            val = 0
        return val ^ (lit & 1)

    def _run_process(
        self, nvars: int, clauses: Sequence[Sequence[int]]
    ) -> Tuple[bool, List[int]]:
        # deferred import: repro.sat.dimacs imports this module's
        # ``solver_for`` for its own replay entry point
        import os
        import tempfile

        from .dimacs import write_dimacs

        fd, path = tempfile.mkstemp(suffix=".cnf", prefix="repro-backend-")
        os.close(fd)
        try:
            write_dimacs(nvars, clauses, path, comment="repro.sat.backend")
            try:
                proc = subprocess.run(
                    self._command + [path],
                    stdout=subprocess.PIPE,
                    stderr=subprocess.DEVNULL,
                    timeout=600,
                    check=False,
                )
            except (OSError, subprocess.TimeoutExpired) as exc:
                raise BackendError(
                    f"external solver {self._command!r} failed: {exc}"
                ) from exc
            return self._parse_output(
                proc.stdout.decode("utf-8", "replace"), proc.returncode, nvars
            )
        finally:
            try:
                os.unlink(path)
            except OSError:
                pass

    def _parse_output(
        self, text: str, returncode: int, nvars: int
    ) -> Tuple[bool, List[int]]:
        verdict: Optional[bool] = None
        model = [0] * nvars
        for line in text.splitlines():
            line = line.strip()
            if line.startswith("s "):
                token = line[2:].strip().upper()
                if token == "SATISFIABLE":
                    verdict = True
                elif token == "UNSATISFIABLE":
                    verdict = False
            elif line.startswith("v "):
                for tok in line[2:].split():
                    try:
                        d = int(tok)
                    except ValueError:
                        continue
                    if d == 0:
                        continue
                    var = abs(d) - 1
                    if 0 <= var < nvars:
                        model[var] = 1 if d > 0 else 0
        if verdict is None:
            # SAT-competition exit codes: 10 = SAT, 20 = UNSAT
            if returncode == 10:
                verdict = True
            elif returncode == 20:
                verdict = False
            else:
                raise BackendError(
                    f"external solver {self._command!r} produced no"
                    f" verdict (exit code {returncode})"
                )
        return verdict, model


class DimacsProcessBackend(SolverBackend):
    """External solver over a DIMACS file round-trip; one-shot only.

    ``command`` is the solver invocation (the CNF path is appended);
    with ``command=None`` the constructor probes ``$REPRO_SAT_SOLVER``
    and then a short list of well-known solver binaries on ``PATH``.
    Use :meth:`available` to test for a usable command before
    registering — this backend is deliberately *not* registered by
    default.
    """

    name = "dimacs"

    #: probed on PATH when no explicit command/env override is given
    KNOWN_SOLVERS: Tuple[str, ...] = (
        "minisat-simp",
        "minisat",
        "picosat",
        "cadical",
        "kissat",
        "cryptominisat5",
        "glucose",
    )

    def __init__(
        self, command: Optional[Sequence[str]] = None, name: str = "dimacs"
    ) -> None:
        self.name = name
        self._command = (
            list(command) if command is not None else self._probe()
        )

    @staticmethod
    def _probe() -> Optional[List[str]]:
        import os

        override = os.environ.get("REPRO_SAT_SOLVER")
        if override:
            return override.split()
        for binary in DimacsProcessBackend.KNOWN_SOLVERS:
            found = shutil.which(binary)
            if found is not None:
                return [found]
        return None

    def available(self) -> bool:
        """Is an external solver command configured/resolvable?"""
        return self._command is not None

    def supports(self, traits: QueryTraits) -> bool:
        return (
            self._command is not None
            and not traits.incremental
            and not traits.needs_proof
            and not traits.needs_groups
        )

    def create(self, traits: QueryTraits) -> Solver:
        if not self.supports(traits):
            raise BackendError(
                f"backend {self.name!r} cannot serve these query traits"
                f" ({traits!r})"
            )
        assert self._command is not None
        # the adapter duck-types the one-shot Solver surface; the cast
        # keeps call-site annotations honest for the common native case
        # (same pattern as sat.template's _TemplateRecorder)
        return cast(Solver, DimacsProcessSolver(self._command, self.name))


# ---------------------------------------------------------------------------
# process-global registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, SolverBackend] = {}


def register_backend(backend: SolverBackend, replace: bool = False) -> None:
    """Register ``backend`` under ``backend.name``.

    Re-registering an existing name requires ``replace=True`` (guards
    against two subsystems silently fighting over one name).
    """
    if not backend.name or backend.name == "abstract":
        raise BackendError("backend must carry a concrete name")
    if backend.name in _REGISTRY and not replace:
        raise BackendError(
            f"backend {backend.name!r} is already registered"
            " (pass replace=True to swap it)"
        )
    _REGISTRY[backend.name] = backend


def unregister_backend(name: str) -> bool:
    """Remove a registered backend; the ``native`` default cannot be
    removed.  Returns whether anything was removed."""
    if name == NativeBackend.name:
        raise BackendError("the native backend cannot be unregistered")
    return _REGISTRY.pop(name, None) is not None


def get_backend(name: str) -> SolverBackend:
    """Look up a backend by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown SAT backend {name!r}"
            f" (available: {', '.join(available_backends())})"
        ) from None


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


register_backend(NativeBackend())


# ---------------------------------------------------------------------------
# per-query selection
# ---------------------------------------------------------------------------

#: selector policies understood by :class:`BackendSelector`
POLICIES: Tuple[str, ...] = ("fixed", "traits")


@dataclass(frozen=True)
class BackendSelector:
    """Maps query traits to a registered backend.

    ``fixed`` (default): every query goes to ``backend`` — unless it
    cannot serve the traits, in which case the query falls back to
    ``native`` (counted as ``sat.backend.<name>.fallbacks``).

    ``traits``: the configured backend is preferred, but a query it
    cannot serve is routed to the first other registered backend whose
    ``supports(traits)`` holds (registry order, ``native`` last as the
    universal fallback).
    """

    backend: str = "native"
    policy: str = "fixed"

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise BackendError(
                f"unknown backend policy {self.policy!r}"
                f" (expected one of {POLICIES})"
            )

    def select(self, traits: QueryTraits) -> SolverBackend:
        preferred = get_backend(self.backend)
        if preferred.supports(traits):
            return preferred
        if self.policy == "traits":
            for name in available_backends():
                if name == preferred.name or name == NativeBackend.name:
                    continue
                candidate = _REGISTRY[name]
                if candidate.supports(traits):
                    return candidate
        if _OBS.enabled:
            _OBS.inc(f"sat.backend.{preferred.name}.fallbacks")
        return get_backend(NativeBackend.name)

    def acquire(self, traits: QueryTraits) -> Solver:
        """A fresh solver for one query, from the selected backend."""
        return self.select(traits).create(traits)


_DEFAULT_SELECTOR = BackendSelector()
_current_selector: BackendSelector = _DEFAULT_SELECTOR


def install_selector(
    selector: Optional[BackendSelector],
) -> BackendSelector:
    """Install the process-global selector; returns the previous one.

    ``None`` restores the default (``native``, ``fixed``).
    :class:`~repro.core.engine.EcoEngine` installs a selector built
    from ``EcoConfig.backend`` / ``EcoConfig.backend_policy`` around
    each run and restores the previous one afterwards.
    """
    global _current_selector
    previous = _current_selector
    _current_selector = (
        selector if selector is not None else _DEFAULT_SELECTOR
    )
    return previous


def current_selector() -> BackendSelector:
    """The selector queries are currently routed through."""
    return _current_selector


def solver_for(traits: QueryTraits) -> Solver:
    """Acquire a solver for one query through the installed selector.

    This is the single construction seam the rest of the repo uses in
    place of direct ``Solver()`` instantiation (lint rule RA007).
    """
    return _current_selector.acquire(traits)
