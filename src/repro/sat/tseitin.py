"""Tseitin encoding of Boolean networks into CNF.

`encode_network` gives every live node a solver variable and adds the
standard consistency clauses.  The encoder is incremental-friendly: PIs
may be pre-bound to existing solver variables, which is how miter copies
share inputs and how the divisor-pairing constraints of expression (2)
are wired up.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..network.network import Network
from ..network.node import GateType
from .solver import Solver
from .types import mklit, neg


def encode_gate(
    solver: Solver, gtype: GateType, out: int, ins: Sequence[int]
) -> None:
    """Add consistency clauses for ``out = gtype(ins)`` over variables.

    N-ary XOR/XNOR is decomposed into a chain of binary XORs with
    auxiliary variables.
    """
    o = mklit(out)
    no = neg(o)
    if gtype is GateType.CONST0:
        solver.add_clause([no])
        return
    if gtype is GateType.CONST1:
        solver.add_clause([o])
        return
    if gtype is GateType.BUF:
        a = mklit(ins[0])
        solver.add_clause([no, a])
        solver.add_clause([o, neg(a)])
        return
    if gtype is GateType.NOT:
        a = mklit(ins[0])
        solver.add_clause([no, neg(a)])
        solver.add_clause([o, a])
        return
    if gtype is GateType.MUX:
        s, d0, d1 = (mklit(v) for v in ins)
        solver.add_clause([neg(s), neg(d1), o])
        solver.add_clause([neg(s), d1, no])
        solver.add_clause([s, neg(d0), o])
        solver.add_clause([s, d0, no])
        # redundant but propagation-strengthening clauses
        solver.add_clause([neg(d0), neg(d1), o])
        solver.add_clause([d0, d1, no])
        return
    if gtype in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR):
        invert_out = gtype in (GateType.NAND, GateType.NOR)
        is_and = gtype in (GateType.AND, GateType.NAND)
        pos_out = neg(o) if invert_out else o
        neg_out = o if invert_out else neg(o)
        big: List[int] = []
        for v in ins:
            a = mklit(v)
            if is_and:
                solver.add_clause([neg_out, a])
                big.append(neg(a))
            else:
                solver.add_clause([pos_out, neg(a)])
                big.append(a)
        big.append(pos_out if is_and else neg_out)
        solver.add_clause(big)
        return
    if gtype in (GateType.XOR, GateType.XNOR):
        acc = ins[0]
        for v in ins[1:-1]:
            aux = solver.new_var()
            _encode_xor2(solver, aux, acc, v)
            acc = aux
        last = ins[-1]
        if gtype is GateType.XOR:
            _encode_xor2(solver, out, acc, last)
        else:
            aux = solver.new_var()
            _encode_xor2(solver, aux, acc, last)
            solver.add_clause([no, neg(mklit(aux))])
            solver.add_clause([o, mklit(aux)])
        return
    raise ValueError(f"cannot encode gate type {gtype}")


def _encode_xor2(solver: Solver, out: int, a: int, b: int) -> None:
    """Clauses for ``out = a XOR b``."""
    o, la, lb = mklit(out), mklit(a), mklit(b)
    solver.add_clause([neg(o), la, lb])
    solver.add_clause([neg(o), neg(la), neg(lb)])
    solver.add_clause([o, la, neg(lb)])
    solver.add_clause([o, neg(la), lb])


def encode_network(
    solver: Solver,
    net: Network,
    pi_vars: Optional[Dict[int, int]] = None,
    force_vars: Optional[Dict[int, int]] = None,
) -> Dict[int, int]:
    """Encode every live node of ``net``; returns node-id → solver var.

    ``pi_vars`` may pre-bind some or all PIs to existing variables so
    multiple circuits can share inputs inside one solver.  ``force_vars``
    binds *internal* nodes to existing variables while still emitting
    their gate clauses — this is how two miter copies share divisor
    variables for interpolation (expression (3)).
    """
    varmap: Dict[int, int] = dict(pi_vars or {})
    force_vars = force_vars or {}
    for node in net.topo_order():
        if node.nid in varmap:
            continue
        if node.is_pi:
            forced = force_vars.get(node.nid)
            varmap[node.nid] = forced if forced is not None else solver.new_var()
            continue
        out = force_vars.get(node.nid)
        if out is None:
            out = solver.new_var()
        varmap[node.nid] = out
        encode_gate(solver, node.gtype, out, [varmap[f] for f in node.fanins])
    return varmap


def add_equality(
    solver: Solver, a: int, b: int, selector: Optional[int] = None
) -> None:
    """Constrain variable ``a == b``, optionally guarded by a selector.

    With ``selector`` given, the equality is active only when the
    selector *literal* is assumed true — the auxiliary-variable trick the
    paper uses to make divisor pairs common variables in expression (2).
    """
    la, lb = mklit(a), mklit(b)
    if selector is None:
        solver.add_clause([neg(la), lb])
        solver.add_clause([la, neg(lb)])
    else:
        ns = neg(selector)
        solver.add_clause([ns, neg(la), lb])
        solver.add_clause([ns, la, neg(lb)])
