"""McMillan interpolation from logged resolution proofs.

Given an UNSAT CNF partitioned into clause sets A and B, a Craig
interpolant I satisfies ``A ⇒ I`` and ``I ∧ B`` UNSAT, with the support
of I limited to variables shared between A and B.  This is the classical
way to extract an ECO patch from the unsatisfiable feasibility instance
(expression (3) in the paper, following [15]); the paper replaces it
with cube enumeration, and benchmark E6 compares the two.

The interpolant is built directly as an AIG
(:class:`~repro.network.strash.AigBuilder`), so structurally identical
partial interpolants are shared.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from ..network.network import Network
from ..network.strash import AigBuilder
from .solver import Solver


class InterpolationError(Exception):
    """Raised when the solver state cannot yield an interpolant."""


def interpolant(
    solver: Solver,
    a_cids: Iterable[int],
    b_cids: Iterable[int],
    var_names: Optional[Dict[int, str]] = None,
) -> Tuple[Network, Dict[int, int]]:
    """Compute an interpolant for partition (A, B) after an UNSAT solve.

    Args:
        solver: a proof-logging solver that has concluded UNSAT at level
            0 (``solver.empty_clause_cid`` set).
        a_cids / b_cids: clause ids (``solver.last_clause_cid`` values)
            of the two partitions; together they must cover every clause
            used by the proof.
        var_names: optional names for the interpolant's PI variables.

    Returns:
        ``(network, var_to_pi)`` — a single-PO network computing I over
        the shared variables, and the map from solver variable to PI id.
    """
    if not solver.proof_logging:
        raise InterpolationError("solver must run with proof_logging=True")
    if solver.empty_clause_cid is None:
        raise InterpolationError("no refutation available (solver not UNSAT at level 0)")
    a_set = set(a_cids)
    b_set = set(b_cids)

    var_in_a: Set[int] = set()
    var_in_b: Set[int] = set()
    for cid in a_set:
        for lit in solver.clause_lits.get(cid, ()):
            var_in_a.add(lit >> 1)
    for cid in b_set:
        for lit in solver.clause_lits.get(cid, ()):
            var_in_b.add(lit >> 1)
    shared = var_in_a & var_in_b

    builder = AigBuilder()
    var_to_lit: Dict[int, int] = {}
    shared_sorted = sorted(shared)
    for v in shared_sorted:
        var_to_lit[v] = builder.add_pi()

    itp: Dict[int, int] = {}

    def axiom_itp(cid: int) -> int:
        lits = solver.clause_lits.get(cid)
        if lits is None:
            raise InterpolationError(f"clause {cid} missing from the proof log")
        if cid in a_set:
            glob = [
                var_to_lit[l >> 1] ^ (l & 1) for l in lits if (l >> 1) in shared
            ]
            return builder.or_many(glob) if glob else AigBuilder.CONST0
        if cid in b_set:
            return AigBuilder.CONST1
        raise InterpolationError(f"clause {cid} is in neither partition")

    # proof chains reference earlier cids only, so ascending order is a
    # valid evaluation order
    relevant = _proof_cone(solver)
    for cid in sorted(relevant):
        chain = solver.proof_chains.get(cid)
        if chain is None:
            itp[cid] = axiom_itp(cid)
            continue
        acc = itp[chain[0][1]]
        for pivot, other in chain[1:]:
            rhs = itp[other]
            if pivot in var_in_a and pivot not in var_in_b:
                acc = builder.or_(acc, rhs)
            else:
                acc = builder.and_(acc, rhs)
        itp[cid] = acc

    root = itp[solver.empty_clause_cid]
    pi_names = [
        (var_names or {}).get(v, f"v{v}") for v in shared_sorted
    ]
    net, litmap = builder.to_network([("itp", root)], pi_names, name="interpolant")
    var_to_pi = {
        v: litmap[var_to_lit[v]] for v in shared_sorted
    }
    return net, var_to_pi


def _proof_cone(solver: Solver) -> Set[int]:
    """Clause ids reachable from the empty clause through the chains."""
    assert solver.empty_clause_cid is not None
    cone: Set[int] = set()
    stack = [solver.empty_clause_cid]
    while stack:
        cid = stack.pop()
        if cid in cone:
            continue
        cone.add(cid)
        chain = solver.proof_chains.get(cid)
        if chain is None:
            continue
        stack.append(chain[0][1])
        stack.extend(other for _, other in chain[1:])
    return cone
