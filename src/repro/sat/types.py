"""Literal/variable conventions shared across the SAT subsystem.

Variables are non-negative integers.  A *literal* encodes a variable and
a phase as ``2 * var + neg`` (``neg`` is 1 for the negated phase), the
same packing MiniSAT uses.  DIMACS conversion helpers are provided for
tests and debugging.
"""

from __future__ import annotations

from typing import Iterable, List


def mklit(var: int, negated: bool = False) -> int:
    """Literal for ``var`` with the requested phase."""
    return var * 2 + (1 if negated else 0)


def neg(lit: int) -> int:
    """Complement of ``lit``."""
    return lit ^ 1


def lit_var(lit: int) -> int:
    """Variable of ``lit``."""
    return lit >> 1


def is_negated(lit: int) -> bool:
    """True when ``lit`` is the negated phase of its variable."""
    return bool(lit & 1)


def to_dimacs(lit: int) -> int:
    """Convert an internal literal to a signed DIMACS integer (1-based)."""
    v = (lit >> 1) + 1
    return -v if lit & 1 else v


def from_dimacs(d: int) -> int:
    """Convert a signed DIMACS integer (1-based) to an internal literal."""
    if d == 0:
        raise ValueError("0 is not a DIMACS literal")
    return mklit(abs(d) - 1, d < 0)


def clause_from_dimacs(lits: Iterable[int]) -> List[int]:
    """Convert a DIMACS clause to internal form."""
    return [from_dimacs(d) for d in lits]
