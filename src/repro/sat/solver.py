"""A MiniSAT-style CDCL SAT solver.

The reproduction needs the same solver services the paper gets from
MiniSAT [6]:

* incremental solving under *assumptions* (every ECO routine —
  ``minimize_assumptions``, cube enumeration, SAT_prune — leans on this);
* ``analyze_final`` assumption cores (the paper's baseline support
  computation, Table 1 columns 7-9);
* optional resolution-proof logging, consumed by
  :mod:`repro.sat.interpolate` for the interpolation baseline.

The implementation is a faithful pure-Python CDCL: two-watched-literal
propagation, first-UIP clause learning with chain logging, VSIDS
activities with phase saving, Luby restarts, and learned-clause database
reduction.
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..obs import DEFAULT as _OBS


class SatBudgetExceeded(Exception):
    """Raised when a solve call exceeds its conflict budget.

    The paper's flow treats SAT timeouts as a signal to fall back to the
    structural patch computation (Section 3.6); this exception is that
    signal.
    """


class _Clause:
    """One clause; positions 0 and 1 are the watched literals."""

    __slots__ = ("lits", "learnt", "act", "cid")

    def __init__(self, lits: List[int], learnt: bool, cid: int) -> None:
        self.lits = lits
        self.learnt = learnt
        self.act = 0.0
        self.cid = cid


class Solver:
    """CDCL solver over literals packed as ``2*var + neg``.

    Typical use::

        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([mklit(a), mklit(b, True)])
        assert s.solve([mklit(b)])
        print(s.model_value(mklit(a)))

    After an UNSAT :meth:`solve` under assumptions, :attr:`core` holds
    the subset of assumption literals the proof used (``analyze_final``).
    """

    def __init__(self, proof_logging: bool = False) -> None:
        self.nvars = 0
        self._watches: List[List[_Clause]] = []
        self._assigns: List[int] = []  # -1 unassigned, 0 false, 1 true
        self._level: List[int] = []
        self._reason: List[Optional[_Clause]] = []
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._activity: List[float] = []
        self._polarity: List[int] = []  # saved phase, 0/1 (1 = assign true)
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._order: List[Tuple[float, int]] = []  # lazy max-heap (neg activity)
        self._scan_hint = 0  # every var below this index is assigned
        self._clauses: List[_Clause] = []
        self._learnts: List[_Clause] = []
        self._ok = True
        self.core: Set[int] = set()
        self.model: List[int] = []
        # statistics
        self.stats = {
            "solves": 0,
            "decisions": 0,
            "conflicts": 0,
            "propagations": 0,
            "learned_literals": 0,
            "restarts": 0,
        }
        # proof logging
        self.proof_logging = proof_logging
        self.last_clause_cid = -1
        self._next_cid = 0
        self.proof_chains: Dict[int, List[Tuple[int, int]]] = {}
        self.clause_lits: Dict[int, Tuple[int, ...]] = {}
        self.empty_clause_cid: Optional[int] = None

    # ------------------------------------------------------------------
    # variables and clauses
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable and return its index."""
        v = self.nvars
        self.nvars += 1
        self._watches.append([])
        self._watches.append([])
        self._assigns.append(-1)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._polarity.append(0)
        return v

    def new_vars(self, n: int) -> List[int]:
        """Allocate ``n`` fresh variables."""
        return [self.new_var() for _ in range(n)]

    def value(self, lit: int) -> int:
        """Current value of ``lit``: 1 true, 0 false, -1 unassigned."""
        v = self._assigns[lit >> 1]
        if v < 0:
            return -1
        return v ^ (lit & 1)

    def _register_clause(self, lits: Sequence[int]) -> int:
        cid = self._next_cid
        self._next_cid += 1
        if self.proof_logging:
            self.clause_lits[cid] = tuple(lits)
        return cid

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a problem clause; returns False if the solver became UNSAT.

        Clauses may only be added at decision level 0 (between solve
        calls).  Duplicate literals are removed and tautologies ignored.
        In proof-logging mode, literals already false at level 0 are kept
        (the resolution proof stays exact); otherwise they are stripped.
        The id of the registered clause is left in :attr:`last_clause_cid`
        for partitioned (interpolation) use.
        """
        if self._trail_lim:
            raise RuntimeError("add_clause requires decision level 0")
        if not self._ok:
            return False
        lits = list(lits)
        seen: Set[int] = set()
        out: List[int] = []
        satisfied = False
        for lit in lits:
            if lit ^ 1 in seen:
                self.last_clause_cid = self._register_clause(sorted(set(lits)))
                return True  # tautology: never needed by any refutation
            if lit in seen:
                continue
            val = self.value(lit)
            if val == 1:
                satisfied = True
            if val == 0 and not self.proof_logging:
                continue  # falsified at level 0; safe to strip
            seen.add(lit)
            out.append(lit)
        cid = self._register_clause(out)
        self.last_clause_cid = cid
        if satisfied:
            return True  # true at level 0: cannot appear in a refutation
        if not out:
            self._ok = False
            self.empty_clause_cid = cid
            return False
        # put non-false literals first so watches start on them
        out.sort(key=lambda l: self.value(l) == 0)
        nonfalse = sum(1 for l in out if self.value(l) != 0)
        clause = _Clause(out, False, cid)
        if nonfalse == 0:
            self._ok = False
            if self.proof_logging:
                self.empty_clause_cid = self._log_level0_conflict(clause)
            return False
        if nonfalse == 1:
            # unit under the level-0 assignment: propagate with this
            # clause as the reason so proof chains can reference it
            if len(out) > 1:
                self._attach(clause)
                self._clauses.append(clause)
            self._unchecked_enqueue(out[0], clause)
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                if self.proof_logging:
                    self.empty_clause_cid = self._log_level0_conflict(conflict)
                return False
            return True
        self._attach(clause)
        self._clauses.append(clause)
        return True

    def _attach(self, clause: _Clause) -> None:
        self._watches[clause.lits[0] ^ 1].append(clause)
        self._watches[clause.lits[1] ^ 1].append(clause)

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------

    def _unchecked_enqueue(self, lit: int, reason: Optional[_Clause]) -> None:
        var = lit >> 1
        self._assigns[var] = 1 - (lit & 1)
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)

    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation; returns a conflicting clause or None."""
        watches = self._watches
        assigns = self._assigns
        nprops = 0
        conflict: Optional[_Clause] = None
        while self._qhead < len(self._trail):
            p = self._trail[self._qhead]
            self._qhead += 1
            nprops += 1
            false_lit = p ^ 1
            wlist = watches[p]
            i = 0
            j = 0
            n = len(wlist)
            while i < n:
                clause = wlist[i]
                i += 1
                lits = clause.lits
                # ensure the false literal is at position 1
                if lits[0] == false_lit:
                    lits[0] = lits[1]
                    lits[1] = false_lit
                first = lits[0]
                v0 = assigns[first >> 1]
                if v0 >= 0 and (v0 ^ (first & 1)) == 1:
                    wlist[j] = clause
                    j += 1
                    continue
                # look for a new literal to watch
                found = False
                for k in range(2, len(lits)):
                    lk = lits[k]
                    vk = assigns[lk >> 1]
                    if vk < 0 or (vk ^ (lk & 1)) == 1:
                        lits[1] = lk
                        lits[k] = false_lit
                        watches[lk ^ 1].append(clause)
                        found = True
                        break
                if found:
                    continue
                # clause is unit or conflicting
                wlist[j] = clause
                j += 1
                if v0 == (first & 1):  # first is false -> conflict
                    conflict = clause
                    # copy remaining watchers and bail out
                    while i < n:
                        wlist[j] = wlist[i]
                        j += 1
                        i += 1
                    self._qhead = len(self._trail)
                else:
                    self._unchecked_enqueue(first, clause)
            del wlist[j:]
            if conflict is not None:
                break
        self.stats["propagations"] += nprops
        return conflict

    # ------------------------------------------------------------------
    # conflict analysis
    # ------------------------------------------------------------------

    def _var_bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for i in range(self.nvars):
                self._activity[i] *= 1e-100
            self._var_inc *= 1e-100
        heapq.heappush(self._order, (-self._activity[var], var))

    def _cla_bump(self, clause: _Clause) -> None:
        clause.act += self._cla_inc
        if clause.act > 1e20:
            for c in self._learnts:
                c.act *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict: _Clause) -> Tuple[List[int], int, List[Tuple[int, int]]]:
        """First-UIP analysis.

        Returns ``(learnt_clause, backtrack_level, chain)`` where the
        learnt clause's first literal is the asserting literal and
        ``chain`` is the resolution chain ``[(pivot_var, clause_id), ...]``
        starting from the conflict clause (pivot -1 for the first entry).
        """
        seen = [False] * self.nvars
        learnt: List[int] = [0]  # slot 0 for the asserting literal
        counter = 0
        p = -1
        clause: Optional[_Clause] = conflict
        index = len(self._trail) - 1
        cur_level = len(self._trail_lim)
        chain: List[Tuple[int, int]] = [(-1, conflict.cid)]
        btlevel = 0
        first = True
        while True:
            assert clause is not None
            if clause.learnt:
                self._cla_bump(clause)
            start = 0 if first else 1
            for k in range(start, len(clause.lits)):
                q = clause.lits[k]
                qv = q >> 1
                if seen[qv]:
                    continue
                if self._level[qv] == 0:
                    # level-0 false literal: normally dropped; kept in
                    # proof mode so the logged chain derives the clause
                    if self.proof_logging:
                        seen[qv] = True
                        learnt.append(q)
                    continue
                seen[qv] = True
                self._var_bump(qv)
                if self._level[qv] >= cur_level:
                    counter += 1
                else:
                    learnt.append(q)
                    if self._level[qv] > btlevel:
                        btlevel = self._level[qv]
            first = False
            # pick next literal to resolve on
            while not seen[self._trail[index] >> 1]:
                index -= 1
            p = self._trail[index]
            index -= 1
            pv = p >> 1
            seen[pv] = False
            counter -= 1
            if counter == 0:
                break
            clause = self._reason[pv]
            assert clause is not None, "UIP literal must have a reason"
            chain.append((pv, clause.cid))
        learnt[0] = p ^ 1
        # conflict-clause minimization (MiniSAT ccmin): drop literals
        # implied by the rest of the clause.  Skipped under proof
        # logging — the removal resolutions are not recorded.
        if not self.proof_logging and len(learnt) > 1:
            for k in range(1, len(learnt)):
                seen[learnt[k] >> 1] = True
            abstract = 0
            for q in learnt[1:]:
                abstract |= 1 << (self._level[q >> 1] & 31)
            kept = [learnt[0]]
            for q in learnt[1:]:
                if self._reason[q >> 1] is None or not self._lit_redundant(
                    q, abstract, seen
                ):
                    kept.append(q)
            if len(kept) < len(learnt):
                learnt = kept
                btlevel = 0
                for q in learnt[1:]:
                    lv = self._level[q >> 1]
                    if lv > btlevel:
                        btlevel = lv
        self.stats["learned_literals"] += len(learnt)
        return learnt, btlevel, chain

    def _lit_redundant(self, p: int, abstract: int, seen: List[bool]) -> bool:
        """True when ``p`` is implied by the other learnt literals."""
        stack = [p]
        marked: List[int] = []
        while stack:
            q = stack.pop()
            reason = self._reason[q >> 1]
            assert reason is not None
            for lit in reason.lits[1:]:
                v = lit >> 1
                if seen[v] or self._level[v] == 0:
                    continue
                if self._reason[v] is None or not (
                    (1 << (self._level[v] & 31)) & abstract
                ):
                    for m in marked:
                        seen[m] = False
                    return False
                seen[v] = True
                marked.append(v)
                stack.append(lit)
        return True

    def _analyze_final(self, p: int) -> Set[int]:
        """Assumption core for a failing assumption literal ``p``.

        ``p`` is the assumption whose negation is already implied.  The
        returned set contains ``p`` plus every earlier assumption literal
        the implication used — MiniSAT's analyzeFinal, phrased directly
        in terms of assumption literals.
        """
        out: Set[int] = {p}
        if not self._trail_lim:
            return out
        seen = [False] * self.nvars
        seen[p >> 1] = True
        for i in range(len(self._trail) - 1, self._trail_lim[0] - 1, -1):
            q = self._trail[i]
            qv = q >> 1
            if not seen[qv]:
                continue
            reason = self._reason[qv]
            if reason is None:
                out.add(q)  # an assumption decision in the core
            else:
                for lit in reason.lits[1:]:
                    if self._level[lit >> 1] > 0:
                        seen[lit >> 1] = True
            seen[qv] = False
        return out

    def _log_level0_conflict(self, conflict: _Clause) -> int:
        """Resolve a level-0 conflict down to the empty clause (for proofs).

        Walks the trail backwards, resolving out every variable of the
        conflict clause with its reason; reason literals assigned earlier
        are picked up later in the walk, so the chain is a valid linear
        resolution ending in the empty clause.
        """
        chain: List[Tuple[int, int]] = [(-1, conflict.cid)]
        pending: Set[int] = {lit >> 1 for lit in conflict.lits}
        for i in range(len(self._trail) - 1, -1, -1):
            q = self._trail[i]
            qv = q >> 1
            if qv not in pending:
                continue
            reason = self._reason[qv]
            if reason is None:
                continue  # unreachable in proof mode: units carry reasons
            chain.append((qv, reason.cid))
            pending.update(lit >> 1 for lit in reason.lits)
        cid = self._register_clause([])
        if self.proof_logging:
            self.proof_chains[cid] = chain
        return cid

    # ------------------------------------------------------------------
    # backtracking / decisions
    # ------------------------------------------------------------------

    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        hint = self._scan_hint
        for i in range(len(self._trail) - 1, bound - 1, -1):
            lit = self._trail[i]
            var = lit >> 1
            self._assigns[var] = -1
            self._reason[var] = None
            self._polarity[var] = 1 - (lit & 1)
            if var < hint:
                hint = var
        self._scan_hint = hint
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _pick_branch_var(self) -> int:
        order = self._order
        assigns = self._assigns
        while order:
            # lazy heap: entries may be stale; skip assigned variables
            _, var = heapq.heappop(order)
            if assigns[var] < 0:
                return var
        # linear fallback with a monotone cursor: every var below the
        # hint is assigned (the hint is lowered on backtracking)
        v = self._scan_hint
        n = self.nvars
        while v < n and assigns[v] >= 0:
            v += 1
        self._scan_hint = v
        return v if v < n else -1

    # ------------------------------------------------------------------
    # the main search loop
    # ------------------------------------------------------------------

    def _reduce_db(self) -> None:
        """Drop the less active half of the learned clauses."""
        self._learnts.sort(key=lambda c: c.act)
        locked = {
            self._reason[lit >> 1]
            for lit in self._trail
            if self._reason[lit >> 1] is not None
        }
        keep: List[_Clause] = []
        half = len(self._learnts) // 2
        for i, clause in enumerate(self._learnts):
            if i < half and clause not in locked and len(clause.lits) > 2:
                self._detach(clause)
            else:
                keep.append(clause)
        self._learnts = keep

    def _detach(self, clause: _Clause) -> None:
        for w in (clause.lits[0] ^ 1, clause.lits[1] ^ 1):
            try:
                self._watches[w].remove(clause)
            except ValueError:
                pass

    @staticmethod
    def _luby(i: int) -> int:
        """The i-th element (1-based) of the Luby restart sequence."""
        while True:
            k = (i + 1).bit_length() - 1
            if (1 << k) - 1 == i:
                return 1 << (k - 1) if k > 0 else 1
            i -= (1 << k) - 1

    def solve(
        self,
        assumptions: Sequence[int] = (),
        budget_conflicts: Optional[int] = None,
    ) -> bool:
        """Solve under ``assumptions``.

        Returns True (SAT, :attr:`model` populated) or False (UNSAT,
        :attr:`core` holds the failing assumption subset).  Raises
        :class:`SatBudgetExceeded` when ``budget_conflicts`` runs out.

        When the :mod:`repro.obs` registry is enabled, the per-call
        deltas of every solver statistic are flushed to the ``sat.*``
        counters and the solve time / learned-DB size are recorded as
        histograms; disabled, the overhead is a single branch.
        """
        if not _OBS.enabled:
            return self._search(assumptions, budget_conflicts)
        before = dict(self.stats)
        t0 = time.perf_counter()
        try:
            return self._search(assumptions, budget_conflicts)
        finally:
            after = self.stats
            _OBS.inc("sat.solves", after["solves"] - before["solves"])
            _OBS.inc("sat.decisions", after["decisions"] - before["decisions"])
            _OBS.inc(
                "sat.propagations", after["propagations"] - before["propagations"]
            )
            _OBS.inc("sat.conflicts", after["conflicts"] - before["conflicts"])
            _OBS.inc("sat.restarts", after["restarts"] - before["restarts"])
            _OBS.inc(
                "sat.learned_literals",
                after["learned_literals"] - before["learned_literals"],
            )
            _OBS.observe("sat.solve_time", time.perf_counter() - t0)
            _OBS.observe("sat.learnt_db", len(self._learnts))

    def _search(
        self,
        assumptions: Sequence[int] = (),
        budget_conflicts: Optional[int] = None,
    ) -> bool:
        """The CDCL search loop behind :meth:`solve`."""
        self.stats["solves"] += 1
        self.core = set()
        self.model = []
        self._cancel_until(0)
        if not self._ok:
            return False
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            if self.proof_logging:
                self.empty_clause_cid = self._log_level0_conflict(conflict)
            return False

        assumptions = list(assumptions)
        conflicts_total = 0
        restart_idx = 0
        restart_limit = 100 * self._luby(restart_idx)
        conflicts_since_restart = 0
        max_learnts = max(1000, len(self._clauses) // 2)

        while True:
            conflict = self._propagate()
            if conflict is not None:
                conflicts_total += 1
                conflicts_since_restart += 1
                self.stats["conflicts"] += 1
                if budget_conflicts is not None and conflicts_total > budget_conflicts:
                    self._cancel_until(0)
                    raise SatBudgetExceeded(
                        f"conflict budget {budget_conflicts} exceeded"
                    )
                if not self._trail_lim:
                    self._ok = False
                    if self.proof_logging:
                        self.empty_clause_cid = self._log_level0_conflict(conflict)
                    return False
                learnt, btlevel, chain = self._analyze(conflict)
                # never backjump above the assumption levels we still need
                self._cancel_until(btlevel)
                cid = self._register_clause(learnt)
                if self.proof_logging:
                    self.proof_chains[cid] = chain
                if len(learnt) == 1:
                    self._cancel_until(0)
                    unit = _Clause(learnt, True, cid)
                    if self.value(learnt[0]) == 0:
                        self._ok = False
                        if self.proof_logging:
                            self.empty_clause_cid = self._log_level0_conflict(unit)
                        return False
                    if self.value(learnt[0]) == -1:
                        self._unchecked_enqueue(learnt[0], unit)
                else:
                    clause = _Clause(learnt, True, cid)
                    # keep a highest-level literal in watch position 1
                    best = max(
                        range(1, len(learnt)),
                        key=lambda k: self._level[learnt[k] >> 1],
                    )
                    learnt[1], learnt[best] = learnt[best], learnt[1]
                    self._attach(clause)
                    self._learnts.append(clause)
                    self._cla_bump(clause)
                    self._unchecked_enqueue(learnt[0], clause)
                self._var_inc /= self._var_decay
                self._cla_inc /= self._cla_decay
                continue

            # no conflict
            if conflicts_since_restart >= restart_limit and len(
                self._trail_lim
            ) > len(assumptions):
                self.stats["restarts"] += 1
                restart_idx += 1
                restart_limit = 100 * self._luby(restart_idx)
                conflicts_since_restart = 0
                self._cancel_until(len(assumptions))
                continue
            if len(self._learnts) > max_learnts + len(self._trail):
                self._reduce_db()
                max_learnts = int(max_learnts * 1.3)

            if len(self._trail_lim) < len(assumptions):
                p = assumptions[len(self._trail_lim)]
                v = self.value(p)
                if v == 1:
                    self._trail_lim.append(len(self._trail))  # dummy level
                    continue
                if v == 0:
                    self.core = self._analyze_final(p)
                    self._cancel_until(0)
                    return False
                self._trail_lim.append(len(self._trail))
                self._unchecked_enqueue(p, None)
                continue

            var = self._pick_branch_var()
            if var < 0:
                self.model = list(self._assigns)
                self._cancel_until(0)
                return True
            self.stats["decisions"] += 1
            self._trail_lim.append(len(self._trail))
            lit = var * 2 + (1 - self._polarity[var])
            self._unchecked_enqueue(lit, None)

    # ------------------------------------------------------------------
    # post-solve queries
    # ------------------------------------------------------------------

    def model_value(self, lit: int) -> int:
        """Value of ``lit`` in the last SAT model (0/1)."""
        if not self.model:
            raise RuntimeError("no model available")
        v = self.model[lit >> 1]
        if v < 0:
            return 0  # don't-care variables default to false
        return v ^ (lit & 1)

    def failed_core(self) -> List[int]:
        """Assumption literals used by the last UNSAT answer."""
        return sorted(self.core)
