"""A MiniSAT-style CDCL SAT solver.

The reproduction needs the same solver services the paper gets from
MiniSAT [6]:

* incremental solving under *assumptions* (every ECO routine —
  ``minimize_assumptions``, cube enumeration, SAT_prune — leans on this);
* ``analyze_final`` assumption cores (the paper's baseline support
  computation, Table 1 columns 7-9);
* optional resolution-proof logging, consumed by
  :mod:`repro.sat.interpolate` for the interpolation baseline.

The implementation is a faithful pure-Python CDCL: two-watched-literal
propagation with MiniSAT-style blocker literals, first-UIP clause
learning with chain logging, VSIDS activities with phase saving, Luby
restarts, and learned-clause database reduction.

Two incremental-reuse services extend the MiniSAT interface:

* **bulk variable allocation** — :meth:`Solver.add_vars` grows every
  per-variable array in one pass and returns the first index, so
  stamping a :class:`~repro.sat.template.CnfTemplate` costs array
  extends instead of one Python call per variable;
* **retractable clause groups** — :meth:`Solver.new_group` allocates an
  activation literal, clauses added with ``group=g`` carry its negation,
  and every :meth:`solve` assumes the activation literals of the open
  groups.  :meth:`Solver.release_group` permanently satisfies the
  group's clauses (and every learned clause derived from them), which
  lets cube-enumeration blocking clauses be retracted so one solver
  serves many enumeration passes.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..obs import DEFAULT as _OBS


class SatBudgetExceeded(Exception):
    """Raised when a solve call exceeds its conflict budget.

    The paper's flow treats SAT timeouts as a signal to fall back to the
    structural patch computation (Section 3.6); this exception is that
    signal.
    """


class SatDeadlineExceeded(SatBudgetExceeded):
    """Raised when the armed wall-clock deadline interrupts a solve.

    A subclass of :class:`SatBudgetExceeded` so every existing
    budget-exhaustion handler (the fallback chain, ``except`` clauses in
    passes) treats it as exhaustion — but distinguishable, because a
    deadline is *not* transient: the engine's ``RetryPolicy`` retries
    conflict-budget exhaustion, never deadline exhaustion.
    """


#: Process-wide monotonic conflict tally across *all* solver instances.
#: ``repro.core.pipeline.ConflictBudget`` reads before/after marks around
#: metered regions to charge a run-level budget even when the region
#: constructs its own internal solvers (cec, 2QBF, resubstitution, ...).
#: A one-element list so the hot loop pays a single indexed add.
_CONFLICT_TALLY = [0]


def conflict_tally() -> int:
    """Total conflicts analyzed by every solver in this process."""
    return _CONFLICT_TALLY[0]


#: Process-wide wall-clock deadline (``time.perf_counter`` seconds) the
#: search loop checks periodically.  Armed by ``EcoEngine.run`` from
#: ``EcoConfig.budget_seconds`` so a *long-running* ``solve()`` call is
#: interrupted mid-search instead of the deadline only being noticed
#: between passes.  One element, same rationale as ``_CONFLICT_TALLY``.
_SOLVE_DEADLINE: List[Optional[float]] = [None]

#: Check the deadline every this-many conflicts / decisions: one
#: ``perf_counter`` call per mask period keeps the watchdog off the
#: hot path (a pure-Python conflict costs far more than the check).
_DEADLINE_CONFLICT_MASK = 63
_DEADLINE_DECISION_MASK = 1023


def set_solve_deadline(deadline: Optional[float]) -> None:
    """Arm (or clear, with ``None``) the in-solver deadline watchdog."""
    _SOLVE_DEADLINE[0] = deadline


def solve_deadline() -> Optional[float]:
    """The currently armed watchdog deadline, if any."""
    return _SOLVE_DEADLINE[0]


class _Clause:
    """One clause; positions 0 and 1 are the watched literals."""

    __slots__ = ("lits", "learnt", "act", "cid")

    def __init__(self, lits: List[int], learnt: bool, cid: int) -> None:
        self.lits = lits
        self.learnt = learnt
        self.act = 0.0
        self.cid = cid


class Solver:
    """CDCL solver over literals packed as ``2*var + neg``.

    Typical use::

        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([mklit(a), mklit(b, True)])
        assert s.solve([mklit(b)])
        print(s.model_value(mklit(a)))

    After an UNSAT :meth:`solve` under assumptions, :attr:`core` holds
    the subset of assumption literals the proof used (``analyze_final``).
    """

    def __init__(self, proof_logging: bool = False) -> None:
        self.nvars = 0
        # watch lists hold mutable [clause, blocker_lit] pairs; when the
        # blocker is already true the clause is skipped without loading it
        self._watches: List[List[List[Any]]] = []
        self._assigns: List[int] = []  # -1 unassigned, 0 false, 1 true
        # per-literal truth values (index = packed literal): the hot
        # propagation loops test literals with one flat index instead of
        # a shift/mask/compare chain against ``_assigns``
        self._vals: List[int] = []
        # persistent conflict-analysis scratch (cleared after each use,
        # so _analyze never allocates O(nvars) per conflict)
        self._seen: List[bool] = []
        self._level: List[int] = []
        self._reason: List[Optional[_Clause]] = []
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._activity: List[float] = []
        self._polarity: List[int] = []  # saved phase, 0/1 (1 = assign true)
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._order: List[Tuple[float, int]] = []  # lazy max-heap (neg activity)
        self._scan_hint = 0  # every var below this index is assigned
        self._clauses: List[_Clause] = []
        self._learnts: List[_Clause] = []
        self._active_groups: List[int] = []
        self._ok = True
        self.core: Set[int] = set()
        self.model: List[int] = []
        # statistics
        self.stats = {
            "solves": 0,
            "decisions": 0,
            "conflicts": 0,
            "propagations": 0,
            "learned_literals": 0,
            "restarts": 0,
        }
        # proof logging
        self.proof_logging = proof_logging
        self.last_clause_cid = -1
        self._next_cid = 0
        self.proof_chains: Dict[int, List[Tuple[int, int]]] = {}
        self.clause_lits: Dict[int, Tuple[int, ...]] = {}
        self.empty_clause_cid: Optional[int] = None

    # ------------------------------------------------------------------
    # variables and clauses
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable and return its index."""
        v = self.nvars
        self.nvars += 1
        self._watches.append([])
        self._watches.append([])
        self._assigns.append(-1)
        self._vals.append(-1)
        self._vals.append(-1)
        self._seen.append(False)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._polarity.append(0)
        return v

    def add_vars(self, n: int) -> int:
        """Bulk-allocate ``n`` fresh variables; returns the first index.

        Every per-variable array is extended in one pass — this is the
        allocation path :class:`~repro.sat.template.CnfTemplate` stamps
        through (``encode_network`` allocates a variable per live node,
        so the one-at-a-time path is measurably hot).
        """
        if n <= 0:
            return self.nvars
        base = self.nvars
        self.nvars = base + n
        self._watches.extend([] for _ in range(2 * n))
        self._assigns.extend([-1] * n)
        self._vals.extend([-1] * (2 * n))
        self._seen.extend([False] * n)
        self._level.extend([0] * n)
        self._reason.extend([None] * n)
        self._activity.extend([0.0] * n)
        self._polarity.extend([0] * n)
        return base

    def new_vars(self, n: int) -> List[int]:
        """Allocate ``n`` fresh variables."""
        base = self.add_vars(n)
        return list(range(base, base + n))

    # -- retractable clause groups -------------------------------------

    def new_group(self) -> int:
        """Open a retractable clause group; returns its group id.

        Clauses added with ``add_clause(lits, group=g)`` are active only
        while the group is open: every :meth:`solve` call automatically
        assumes the group's activation literal.  :meth:`release_group`
        retracts them permanently.
        """
        g = self.new_var()
        self._active_groups.append(g)
        _OBS.inc("sat.groups_opened")
        return g

    def group_lit(self, group: int) -> int:
        """The activation literal :meth:`solve` assumes for ``group``."""
        return group * 2

    def release_group(self, group: int) -> bool:
        """Retract every clause added under ``group``.

        Adds the unit clause ``¬group``, which permanently satisfies the
        group's clauses *and* every learned clause derived from them (a
        resolvent of a group clause always keeps the ``¬group`` literal:
        the activation variable is only ever assigned as an assumption
        decision, so it is never a resolution pivot).  Returns the
        :meth:`add_clause` status.
        """
        if group not in self._active_groups:
            raise ValueError(f"group {group} is not open")
        self._active_groups.remove(group)
        _OBS.inc("sat.groups_released")
        return self.add_clause([group * 2 + 1])

    def value(self, lit: int) -> int:
        """Current value of ``lit``: 1 true, 0 false, -1 unassigned."""
        v = self._assigns[lit >> 1]
        if v < 0:
            return -1
        return v ^ (lit & 1)

    def _register_clause(self, lits: Sequence[int]) -> int:
        cid = self._next_cid
        self._next_cid += 1
        if self.proof_logging:
            self.clause_lits[cid] = tuple(lits)
        return cid

    def add_clause(self, lits: Iterable[int], group: Optional[int] = None) -> bool:
        """Add a problem clause; returns False if the solver became UNSAT.

        Clauses may only be added at decision level 0 (between solve
        calls).  Duplicate literals are removed and tautologies ignored.
        In proof-logging mode, literals already false at level 0 are kept
        (the resolution proof stays exact); otherwise they are stripped.
        The id of the registered clause is left in :attr:`last_clause_cid`
        for partitioned (interpolation) use.

        With ``group`` given the clause joins that retractable group (its
        negated activation literal is appended; see :meth:`new_group`).
        """
        if self._trail_lim:
            raise RuntimeError("add_clause requires decision level 0")
        if not self._ok:
            return False
        lits = list(lits)
        if group is not None:
            if group not in self._active_groups:
                raise ValueError(f"group {group} is not open")
            lits.append(group * 2 + 1)
        seen: Set[int] = set()
        out: List[int] = []
        satisfied = False
        for lit in lits:
            if lit ^ 1 in seen:
                self.last_clause_cid = self._register_clause(sorted(set(lits)))
                return True  # tautology: never needed by any refutation
            if lit in seen:
                continue
            val = self.value(lit)
            if val == 1:
                satisfied = True
            if val == 0 and not self.proof_logging:
                continue  # falsified at level 0; safe to strip
            seen.add(lit)
            out.append(lit)
        cid = self._register_clause(out)
        self.last_clause_cid = cid
        if satisfied:
            return True  # true at level 0: cannot appear in a refutation
        if not out:
            self._ok = False
            self.empty_clause_cid = cid
            return False
        # put non-false literals first so watches start on them
        out.sort(key=lambda l: self.value(l) == 0)
        nonfalse = sum(1 for l in out if self.value(l) != 0)
        clause = _Clause(out, False, cid)
        if nonfalse == 0:
            self._ok = False
            if self.proof_logging:
                self.empty_clause_cid = self._log_level0_conflict(clause)
            return False
        if nonfalse == 1:
            # unit under the level-0 assignment: propagate with this
            # clause as the reason so proof chains can reference it
            if len(out) > 1:
                self._attach(clause)
                self._clauses.append(clause)
            self._unchecked_enqueue(out[0], clause)
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                if self.proof_logging:
                    self.empty_clause_cid = self._log_level0_conflict(conflict)
                return False
            return True
        self._attach(clause)
        self._clauses.append(clause)
        return True

    def add_compiled_clause(self, lits: Sequence[int]) -> bool:
        """Fast-path clause add for pre-normalized (template) clauses.

        The caller guarantees decision level 0, no proof logging, no
        duplicate literals, and no tautology — exactly what a compiled
        :class:`~repro.sat.template.CnfTemplate` provides.  Level-0
        semantics match :meth:`add_clause`: satisfied clauses are
        skipped, false literals stripped, and units propagated
        immediately (so constants cascade through a stamp).
        """
        if self._trail_lim or self.proof_logging:
            return self.add_clause(lits)  # exact normalization required
        if not self._ok:
            return False
        assigns = self._assigns
        out: List[int] = []
        for lit in lits:
            v = assigns[lit >> 1]
            if v < 0:
                out.append(lit)
            elif v == 1 - (lit & 1):
                self.last_clause_cid = self._next_cid
                self._next_cid += 1
                return True  # satisfied at level 0
        cid = self._next_cid
        self._next_cid += 1
        self.last_clause_cid = cid
        if not out:
            self._ok = False
            self.empty_clause_cid = cid
            return False
        if len(out) == 1:
            self._unchecked_enqueue(out[0], None)
            if self._propagate() is not None:
                self._ok = False
                return False
            return True
        clause = _Clause(out, False, cid)
        self._attach(clause)
        self._clauses.append(clause)
        return True

    def _attach(self, clause: _Clause) -> None:
        lits = clause.lits
        self._watches[lits[0] ^ 1].append([clause, lits[1]])
        self._watches[lits[1] ^ 1].append([clause, lits[0]])

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------

    def _unchecked_enqueue(self, lit: int, reason: Optional[_Clause]) -> None:
        var = lit >> 1
        self._assigns[var] = 1 - (lit & 1)
        vals = self._vals
        vals[lit] = 1
        vals[lit ^ 1] = 0
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)

    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation; returns a conflicting clause or None."""
        watches = self._watches
        assigns = self._assigns
        vals = self._vals
        level = self._level
        reason = self._reason
        trail = self._trail
        trail_append = trail.append
        dl = len(self._trail_lim)
        qhead = self._qhead
        # track the trail length locally: the outer loop runs once per
        # propagated literal (tens of millions per suite) and a len()
        # call per iteration is measurable
        ntrail = len(trail)
        nprops = 0
        conflict: Optional[_Clause] = None
        while qhead < ntrail:
            p = trail[qhead]
            qhead += 1
            nprops += 1
            false_lit = p ^ 1
            wlist = watches[p]
            i = 0
            n = len(wlist)
            # fast scan: while no watch has migrated the list needs no
            # compaction, so kept entries cost one check instead of a
            # check plus a store (most visits keep every watch)
            while i < n:
                if vals[wlist[i][1]] == 1:
                    i += 1
                    continue
                break
            if i == n:
                continue
            j = i
            while i < n:
                entry = wlist[i]
                i += 1
                # blocker already true: keep the watch, skip the clause
                if vals[entry[1]] == 1:
                    wlist[j] = entry
                    j += 1
                    continue
                clause = entry[0]
                lits = clause.lits
                # ensure the false literal is at position 1
                if lits[0] == false_lit:
                    lits[0] = lits[1]
                    lits[1] = false_lit
                first = lits[0]
                v0 = vals[first]
                if v0 == 1:
                    entry[1] = first  # first is true: make it the blocker
                    wlist[j] = entry
                    j += 1
                    continue
                # look for a new literal to watch
                for k in range(2, len(lits)):
                    lk = lits[k]
                    if vals[lk] != 0:  # unassigned or true
                        lits[1] = lk
                        lits[k] = false_lit
                        watches[lk ^ 1].append([clause, first])
                        break
                else:
                    # clause is unit or conflicting
                    entry[1] = first
                    wlist[j] = entry
                    j += 1
                    if v0 == 0:  # first is false -> conflict
                        conflict = clause
                        # copy remaining watchers and bail out
                        while i < n:
                            wlist[j] = wlist[i]
                            j += 1
                            i += 1
                        qhead = ntrail
                    else:
                        assigns[first >> 1] = 1 - (first & 1)
                        vals[first] = 1
                        vals[first ^ 1] = 0
                        level[first >> 1] = dl
                        reason[first >> 1] = clause
                        trail_append(first)
                        ntrail += 1
            del wlist[j:]
            if conflict is not None:
                break
        self._qhead = qhead
        self.stats["propagations"] += nprops
        return conflict

    # ------------------------------------------------------------------
    # conflict analysis
    # ------------------------------------------------------------------

    def _cla_bump(self, clause: _Clause) -> None:
        clause.act += self._cla_inc
        if clause.act > 1e20:
            for c in self._learnts:
                c.act *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict: _Clause) -> Tuple[List[int], int, List[Tuple[int, int]]]:
        """First-UIP analysis.

        Returns ``(learnt_clause, backtrack_level, chain)`` where the
        learnt clause's first literal is the asserting literal and
        ``chain`` is the resolution chain ``[(pivot_var, clause_id), ...]``
        starting from the conflict clause (pivot -1 for the first entry).
        """
        level = self._level
        trail = self._trail
        reason = self._reason
        activity = self._activity
        order = self._order
        var_inc = self._var_inc
        proof = self.proof_logging
        heappush = heapq.heappush
        seen = self._seen
        touched: List[int] = []
        learnt: List[int] = [0]  # slot 0 for the asserting literal
        counter = 0
        p = -1
        clause: Optional[_Clause] = conflict
        index = len(trail) - 1
        cur_level = len(self._trail_lim)
        chain: List[Tuple[int, int]] = [(-1, conflict.cid)]
        btlevel = 0
        first = True
        while True:
            assert clause is not None
            if clause.learnt:
                self._cla_bump(clause)
            lits = clause.lits
            for k in range(0 if first else 1, len(lits)):
                q = lits[k]
                qv = q >> 1
                if seen[qv]:
                    continue
                lv = level[qv]
                if lv == 0:
                    # level-0 false literal: normally dropped; kept in
                    # proof mode so the logged chain derives the clause
                    if proof:
                        seen[qv] = True
                        touched.append(qv)
                        learnt.append(q)
                    continue
                seen[qv] = True
                touched.append(qv)
                # inlined _var_bump (this loop dominates analysis time)
                act = activity[qv] + var_inc
                activity[qv] = act
                if act > 1e100:
                    for i in range(self.nvars):
                        activity[i] *= 1e-100
                    var_inc *= 1e-100
                    self._var_inc = var_inc
                    act = activity[qv]
                heappush(order, (-act, qv))
                if lv >= cur_level:
                    counter += 1
                else:
                    learnt.append(q)
                    if lv > btlevel:
                        btlevel = lv
            first = False
            # pick next literal to resolve on
            while not seen[trail[index] >> 1]:
                index -= 1
            p = trail[index]
            index -= 1
            pv = p >> 1
            seen[pv] = False
            counter -= 1
            if counter == 0:
                break
            clause = reason[pv]
            assert clause is not None, "UIP literal must have a reason"
            chain.append((pv, clause.cid))
        learnt[0] = p ^ 1
        # conflict-clause minimization (MiniSAT ccmin): drop literals
        # implied by the rest of the clause.  Skipped under proof
        # logging — the removal resolutions are not recorded.
        if not self.proof_logging and len(learnt) > 1:
            for k in range(1, len(learnt)):
                seen[learnt[k] >> 1] = True
                touched.append(learnt[k] >> 1)
            abstract = 0
            for q in learnt[1:]:
                abstract |= 1 << (self._level[q >> 1] & 31)
            kept = [learnt[0]]
            for q in learnt[1:]:
                if self._reason[q >> 1] is None or not self._lit_redundant(
                    q, abstract, seen, touched
                ):
                    kept.append(q)
            if len(kept) < len(learnt):
                learnt = kept
                btlevel = 0
                for q in learnt[1:]:
                    lv = self._level[q >> 1]
                    if lv > btlevel:
                        btlevel = lv
        for v in touched:
            seen[v] = False
        self.stats["learned_literals"] += len(learnt)
        return learnt, btlevel, chain

    def _lit_redundant(
        self, p: int, abstract: int, seen: List[bool], touched: List[int]
    ) -> bool:
        """True when ``p`` is implied by the other learnt literals.

        On success the visited variables stay marked in ``seen`` (the
        standard memoization) — they are recorded in ``touched`` so the
        caller's end-of-analysis sweep still clears them.
        """
        stack = [p]
        marked: List[int] = []
        while stack:
            q = stack.pop()
            reason = self._reason[q >> 1]
            assert reason is not None
            for lit in reason.lits[1:]:
                v = lit >> 1
                if seen[v] or self._level[v] == 0:
                    continue
                if self._reason[v] is None or not (
                    (1 << (self._level[v] & 31)) & abstract
                ):
                    for m in marked:
                        seen[m] = False
                    return False
                seen[v] = True
                marked.append(v)
                stack.append(lit)
        touched.extend(marked)
        return True

    def _analyze_final(self, p: int) -> Set[int]:
        """Assumption core for a failing assumption literal ``p``.

        ``p`` is the assumption whose negation is already implied.  The
        returned set contains ``p`` plus every earlier assumption literal
        the implication used — MiniSAT's analyzeFinal, phrased directly
        in terms of assumption literals.
        """
        out: Set[int] = {p}
        if not self._trail_lim:
            return out
        seen = [False] * self.nvars
        seen[p >> 1] = True
        for i in range(len(self._trail) - 1, self._trail_lim[0] - 1, -1):
            q = self._trail[i]
            qv = q >> 1
            if not seen[qv]:
                continue
            reason = self._reason[qv]
            if reason is None:
                out.add(q)  # an assumption decision in the core
            else:
                for lit in reason.lits[1:]:
                    if self._level[lit >> 1] > 0:
                        seen[lit >> 1] = True
            seen[qv] = False
        return out

    def _log_level0_conflict(self, conflict: _Clause) -> int:
        """Resolve a level-0 conflict down to the empty clause (for proofs).

        Walks the trail backwards, resolving out every variable of the
        conflict clause with its reason; reason literals assigned earlier
        are picked up later in the walk, so the chain is a valid linear
        resolution ending in the empty clause.
        """
        chain: List[Tuple[int, int]] = [(-1, conflict.cid)]
        pending: Set[int] = {lit >> 1 for lit in conflict.lits}
        for i in range(len(self._trail) - 1, -1, -1):
            q = self._trail[i]
            qv = q >> 1
            if qv not in pending:
                continue
            reason = self._reason[qv]
            if reason is None:
                continue  # unreachable in proof mode: units carry reasons
            chain.append((qv, reason.cid))
            pending.update(lit >> 1 for lit in reason.lits)
        cid = self._register_clause([])
        if self.proof_logging:
            self.proof_chains[cid] = chain
        return cid

    # ------------------------------------------------------------------
    # backtracking / decisions
    # ------------------------------------------------------------------

    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        trail = self._trail
        assigns = self._assigns
        vals = self._vals
        reason = self._reason
        polarity = self._polarity
        hint = self._scan_hint
        for i in range(len(trail) - 1, bound - 1, -1):
            lit = trail[i]
            var = lit >> 1
            assigns[var] = -1
            vals[lit] = -1
            vals[lit ^ 1] = -1
            reason[var] = None
            polarity[var] = 1 - (lit & 1)
            if var < hint:
                hint = var
        self._scan_hint = hint
        del trail[bound:]
        del self._trail_lim[level:]
        self._qhead = bound

    def _pick_branch_var(self) -> int:
        order = self._order
        assigns = self._assigns
        while order:
            # lazy heap: entries may be stale; skip assigned variables
            _, var = heapq.heappop(order)
            if assigns[var] < 0:
                return var
        # linear fallback with a monotone cursor: every var below the
        # hint is assigned (the hint is lowered on backtracking)
        v = self._scan_hint
        n = self.nvars
        while v < n and assigns[v] >= 0:
            v += 1
        self._scan_hint = v
        return v if v < n else -1

    # ------------------------------------------------------------------
    # the main search loop
    # ------------------------------------------------------------------

    def _reduce_db(self) -> None:
        """Drop the less active half of the learned clauses."""
        self._learnts.sort(key=lambda c: c.act)
        locked = {
            self._reason[lit >> 1]
            for lit in self._trail
            if self._reason[lit >> 1] is not None
        }
        keep: List[_Clause] = []
        half = len(self._learnts) // 2
        for i, clause in enumerate(self._learnts):
            if i < half and clause not in locked and len(clause.lits) > 2:
                self._detach(clause)
            else:
                keep.append(clause)
        self._learnts = keep

    def _detach(self, clause: _Clause) -> None:
        for w in (clause.lits[0] ^ 1, clause.lits[1] ^ 1):
            wlist = self._watches[w]
            for idx, entry in enumerate(wlist):
                if entry[0] is clause:
                    del wlist[idx]
                    break

    @staticmethod
    def _luby(i: int) -> int:
        """The i-th element (1-based) of the Luby restart sequence."""
        while True:
            k = (i + 1).bit_length() - 1
            if (1 << k) - 1 == i:
                return 1 << (k - 1) if k > 0 else 1
            i -= (1 << k) - 1

    def _deadline_interrupt(self, deadline: float) -> None:
        """Unwind to level 0 and raise :class:`SatDeadlineExceeded`."""
        self._cancel_until(0)
        _OBS.inc("sat.deadline_interrupts")
        raise SatDeadlineExceeded(
            f"solve interrupted by wall-clock deadline "
            f"({time.perf_counter() - deadline:.3f}s past)"
        )

    def solve(
        self,
        assumptions: Sequence[int] = (),
        budget_conflicts: Optional[int] = None,
    ) -> bool:
        """Solve under ``assumptions``.

        Returns True (SAT, :attr:`model` populated) or False (UNSAT,
        :attr:`core` holds the failing assumption subset).  Raises
        :class:`SatBudgetExceeded` when ``budget_conflicts`` runs out.

        When the :mod:`repro.obs` registry is enabled, the per-call
        deltas of every solver statistic are flushed to the ``sat.*``
        counters and the solve time / learned-DB size are recorded as
        histograms; disabled, the overhead is a single branch.
        """
        if self._active_groups:
            assumptions = [g * 2 for g in self._active_groups] + list(assumptions)
        if not _OBS.enabled:
            return self._search(assumptions, budget_conflicts)
        before = dict(self.stats)
        t0 = time.perf_counter()
        try:
            return self._search(assumptions, budget_conflicts)
        finally:
            after = self.stats
            _OBS.inc("sat.solves", after["solves"] - before["solves"])
            _OBS.inc("sat.decisions", after["decisions"] - before["decisions"])
            _OBS.inc(
                "sat.propagations", after["propagations"] - before["propagations"]
            )
            _OBS.inc("sat.conflicts", after["conflicts"] - before["conflicts"])
            _OBS.inc("sat.restarts", after["restarts"] - before["restarts"])
            _OBS.inc(
                "sat.learned_literals",
                after["learned_literals"] - before["learned_literals"],
            )
            _OBS.observe("sat.solve_time", time.perf_counter() - t0)
            _OBS.observe("sat.learnt_db", len(self._learnts))

    def _search(
        self,
        assumptions: Sequence[int] = (),
        budget_conflicts: Optional[int] = None,
    ) -> bool:
        """The CDCL search loop behind :meth:`solve`."""
        self.stats["solves"] += 1
        deadline = _SOLVE_DEADLINE[0]
        if deadline is not None and time.perf_counter() > deadline:
            # fail fast when the run's deadline already passed: even a
            # conflict-free solve should not start new work
            self._deadline_interrupt(deadline)
        self.core = set()
        self.model = []
        self._cancel_until(0)
        if not self._ok:
            return False
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            if self.proof_logging:
                self.empty_clause_cid = self._log_level0_conflict(conflict)
            return False

        assumptions = list(assumptions)
        conflicts_total = 0
        restart_idx = 0
        restart_limit = 100 * self._luby(restart_idx)
        conflicts_since_restart = 0
        max_learnts = max(1000, len(self._clauses) // 2)

        while True:
            conflict = self._propagate()
            if conflict is not None:
                conflicts_total += 1
                conflicts_since_restart += 1
                self.stats["conflicts"] += 1
                _CONFLICT_TALLY[0] += 1
                if budget_conflicts is not None and conflicts_total > budget_conflicts:
                    self._cancel_until(0)
                    raise SatBudgetExceeded(
                        f"conflict budget {budget_conflicts} exceeded"
                    )
                if (
                    deadline is not None
                    and conflicts_total & _DEADLINE_CONFLICT_MASK == 0
                    and time.perf_counter() > deadline
                ):
                    self._deadline_interrupt(deadline)
                if not self._trail_lim:
                    self._ok = False
                    if self.proof_logging:
                        self.empty_clause_cid = self._log_level0_conflict(conflict)
                    return False
                learnt, btlevel, chain = self._analyze(conflict)
                # never backjump above the assumption levels we still need
                self._cancel_until(btlevel)
                cid = self._register_clause(learnt)
                if self.proof_logging:
                    self.proof_chains[cid] = chain
                if len(learnt) == 1:
                    self._cancel_until(0)
                    unit = _Clause(learnt, True, cid)
                    if self.value(learnt[0]) == 0:
                        self._ok = False
                        if self.proof_logging:
                            self.empty_clause_cid = self._log_level0_conflict(unit)
                        return False
                    if self.value(learnt[0]) == -1:
                        self._unchecked_enqueue(learnt[0], unit)
                else:
                    clause = _Clause(learnt, True, cid)
                    # keep a highest-level literal in watch position 1
                    best = max(
                        range(1, len(learnt)),
                        key=lambda k: self._level[learnt[k] >> 1],
                    )
                    learnt[1], learnt[best] = learnt[best], learnt[1]
                    self._attach(clause)
                    self._learnts.append(clause)
                    self._cla_bump(clause)
                    self._unchecked_enqueue(learnt[0], clause)
                self._var_inc /= self._var_decay
                self._cla_inc /= self._cla_decay
                continue

            # no conflict
            if conflicts_since_restart >= restart_limit and len(
                self._trail_lim
            ) > len(assumptions):
                self.stats["restarts"] += 1
                restart_idx += 1
                restart_limit = 100 * self._luby(restart_idx)
                conflicts_since_restart = 0
                self._cancel_until(len(assumptions))
                continue
            if len(self._learnts) > max_learnts + len(self._trail):
                self._reduce_db()
                max_learnts = int(max_learnts * 1.3)

            if len(self._trail_lim) < len(assumptions):
                p = assumptions[len(self._trail_lim)]
                v = self.value(p)
                if v == 1:
                    self._trail_lim.append(len(self._trail))  # dummy level
                    continue
                if v == 0:
                    self.core = self._analyze_final(p)
                    if self._active_groups:
                        # activation literals are solver-internal: callers
                        # never passed them, so keep them out of the core
                        self.core.difference_update(
                            g * 2 for g in self._active_groups
                        )
                    self._cancel_until(0)
                    return False
                self._trail_lim.append(len(self._trail))
                self._unchecked_enqueue(p, None)
                continue

            var = self._pick_branch_var()
            if var < 0:
                self.model = list(self._assigns)
                self._cancel_until(0)
                return True
            self.stats["decisions"] += 1
            if (
                deadline is not None
                and self.stats["decisions"] & _DEADLINE_DECISION_MASK == 0
                and time.perf_counter() > deadline
            ):
                # propagation-dominant instances can run long without
                # conflicting; the decision pulse catches those
                self._deadline_interrupt(deadline)
            self._trail_lim.append(len(self._trail))
            lit = var * 2 + (1 - self._polarity[var])
            self._unchecked_enqueue(lit, None)

    # ------------------------------------------------------------------
    # post-solve queries
    # ------------------------------------------------------------------

    def model_value(self, lit: int) -> int:
        """Value of ``lit`` in the last SAT model (0/1)."""
        if not self.model:
            raise RuntimeError("no model available")
        v = self.model[lit >> 1]
        if v < 0:
            return 0  # don't-care variables default to false
        return v ^ (lit & 1)

    def failed_core(self) -> List[int]:
        """Assumption literals used by the last UNSAT answer."""
        return sorted(self.core)
