"""DIMACS CNF reading/writing and a standalone solve entry point.

Lets the solver interoperate with standard SAT tooling: suite netlists
can be exported as CNF, external instances can be replayed against this
solver, and regression cases can be stored as ``.cnf`` files.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .backend import QueryTraits, solver_for
from .types import from_dimacs, to_dimacs


class DimacsError(Exception):
    """Raised on malformed DIMACS input."""


def parse_dimacs(text: str) -> Tuple[int, List[List[int]]]:
    """Parse DIMACS CNF; returns ``(num_vars, clauses)`` in internal lits."""
    nvars: Optional[int] = None
    nclauses: Optional[int] = None
    clauses: List[List[int]] = []
    current: List[int] = []
    for lineno, raw in enumerate(text.split("\n"), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise DimacsError(f"line {lineno}: bad problem line {line!r}")
            nvars, nclauses = int(parts[2]), int(parts[3])
            continue
        if line.startswith("%"):
            break  # SATLIB-style trailer
        for tok in line.split():
            try:
                d = int(tok)
            except ValueError as exc:
                raise DimacsError(f"line {lineno}: bad token {tok!r}") from exc
            if d == 0:
                clauses.append(current)
                current = []
            else:
                current.append(from_dimacs(d))
    if current:
        clauses.append(current)
    if nvars is None:
        nvars = max(
            ((lit >> 1) + 1 for c in clauses for lit in c), default=0
        )
    for c in clauses:
        for lit in c:
            if (lit >> 1) >= nvars:
                raise DimacsError(
                    f"variable {(lit >> 1) + 1} exceeds declared count {nvars}"
                )
    if nclauses is not None and nclauses != len(clauses):
        # tolerated (common in the wild) but the count is normalized
        pass
    return nvars, clauses


def read_dimacs(path: str) -> Tuple[int, List[List[int]]]:
    """Read a ``.cnf`` file."""
    with open(path, "r", encoding="utf-8") as f:
        return parse_dimacs(f.read())


def write_dimacs(
    nvars: int,
    clauses: Sequence[Sequence[int]],
    path: Optional[str] = None,
    comment: str = "",
) -> str:
    """Serialize clauses (internal literals) as DIMACS CNF."""
    lines = []
    if comment:
        for part in comment.split("\n"):
            lines.append(f"c {part}")
    lines.append(f"p cnf {nvars} {len(clauses)}")
    for clause in clauses:
        lines.append(" ".join(str(to_dimacs(l)) for l in clause) + " 0")
    text = "\n".join(lines) + "\n"
    if path:
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
    return text


def solve_dimacs(
    text: str, budget_conflicts: Optional[int] = None
) -> Tuple[bool, Optional[List[int]]]:
    """Solve DIMACS text; returns ``(sat, model)`` with a 0/1 model list."""
    nvars, clauses = parse_dimacs(text)
    solver = solver_for(QueryTraits(incremental=False))
    solver.new_vars(nvars)
    for clause in clauses:
        if not solver.add_clause(clause):
            return False, None
    if not solver.solve(budget_conflicts=budget_conflicts):
        return False, None
    model = [
        solver.model[v] if solver.model[v] in (0, 1) else 0
        for v in range(nvars)
    ]
    return True, model
