"""Totalizer cardinality encoding.

Provides an incremental "at most k of these literals" constraint.  The
exact-pruning search of :mod:`repro.core.satprune` uses it to cap the
*number* of selected divisors when divisor costs are uniform, and the
test suite uses it to validate solver behaviour on structured CNFs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .solver import Solver
from .types import mklit, neg


class Totalizer:
    """A totalizer over input literals with unary output counters.

    ``outputs[i]`` is a literal that is true iff at least ``i+1`` inputs
    are true.  Constraining "at most k" is assuming/adding
    ``neg(outputs[k])``.

    Bound edge cases follow one uniform contract for both directions
    (``at_most`` / ``at_least``):

    * a **trivially true** bound (``at_most(k)`` with ``k >= n``,
      ``at_least(k)`` with ``k <= 0``) returns ``None`` — there is
      nothing to assume;
    * an **unsatisfiable** bound (``at_most(k)`` with ``k < 0``,
      ``at_least(k)`` with ``k > n``) returns a constant-false literal,
      so assuming it makes the query UNSAT instead of raising.

    The empty totalizer (``n == 0``) is fully supported under the same
    rules: ``at_most(0)`` is ``None``, ``at_least(1)`` is the
    constant-false literal.
    """

    def __init__(self, solver: Solver, inputs: Sequence[int]) -> None:
        self.solver = solver
        self.inputs = list(inputs)
        self._false_lit: Optional[int] = None
        if not self.inputs:
            self.outputs: List[int] = []
            return
        self.outputs = self._build(self.inputs)

    def _const_false(self) -> int:
        """A literal forced false at level 0 (allocated lazily, once)."""
        if self._false_lit is None:
            v = self.solver.new_var()
            self.solver.add_clause([mklit(v, True)])
            self._false_lit = mklit(v)
        return self._false_lit

    def _build(self, lits: List[int]) -> List[int]:
        if len(lits) == 1:
            return list(lits)
        mid = len(lits) // 2
        left = self._build(lits[:mid])
        right = self._build(lits[mid:])
        return self._merge(left, right)

    def _merge(self, left: List[int], right: List[int]) -> List[int]:
        n = len(left) + len(right)
        out = [mklit(self.solver.new_var()) for _ in range(n)]
        # sum semantics: out[k] <- at least k+1 true among left+right
        for i in range(len(left) + 1):
            for j in range(len(right) + 1):
                if i + j > 0:
                    # (left>=i and right>=j) -> out >= i+j
                    clause = [out[i + j - 1]]
                    if i > 0:
                        clause.append(neg(left[i - 1]))
                    if j > 0:
                        clause.append(neg(right[j - 1]))
                    self.solver.add_clause(clause)
                # (left<i or right<j) propagation for the other direction:
                # out >= i+j+1 -> (left >= i+1 or right >= j+1).  The
                # i == j == 0 instance (out>=1 -> some input true) is
                # what makes at_least bounds enforceable at all.
                if i + j < n:
                    clause2 = [neg(out[i + j])]
                    if i < len(left):
                        clause2.append(left[i])
                    if j < len(right):
                        clause2.append(right[j])
                    self.solver.add_clause(clause2)
        return out

    def at_most(self, k: int) -> Optional[int]:
        """Literal to assume for "at most k".

        ``None`` when trivially true (``k >= len(inputs)``); a
        constant-false literal when unsatisfiable (``k < 0``).
        """
        if k >= len(self.inputs):
            return None
        if k < 0:
            return self._const_false()
        return neg(self.outputs[k])

    def at_least(self, k: int) -> Optional[int]:
        """Literal to assume for "at least k".

        ``None`` when trivially true (``k <= 0``); a constant-false
        literal when unsatisfiable (``k > len(inputs)``).
        """
        if k <= 0:
            return None
        if k > len(self.inputs):
            return self._const_false()
        return self.outputs[k - 1]
