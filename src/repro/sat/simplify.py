"""CNF preprocessing (SatELite-style) for one-shot solves.

Implements the classic simplification trio on a clause list:

* **unit propagation** at the formula level;
* **subsumption** (drop clauses containing another clause) and
  **self-subsuming resolution** (strengthen ``D ∪ {¬l}`` against
  ``C ∪ {l}`` with ``C ⊆ D``);
* **bounded variable elimination** (resolve out a variable when the
  resolvent count does not grow the formula).

Variables named in ``frozen`` are never eliminated — callers freeze the
variables they need to assume or read back.  Eliminated variables are
reconstructible into full models via :meth:`Preprocessor.reconstruct`.

Used by the CEC fast path and available as a substrate utility; the
incremental ECO loops keep their unsimplified solvers (their assumption
sets touch most variables anyway).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple


class PreprocessorError(Exception):
    """Raised on malformed input."""


class ClauseCollector:
    """A Solver-shaped sink for :func:`~repro.sat.tseitin.encode_network`.

    Collects variables and clauses without solving, so an encoding can
    be preprocessed before it ever reaches a real solver.
    """

    def __init__(self) -> None:
        self.nvars = 0
        self.clause_list: List[List[int]] = []

    def new_var(self) -> int:
        v = self.nvars
        self.nvars += 1
        return v

    def new_vars(self, n: int) -> List[int]:
        return [self.new_var() for _ in range(n)]

    def add_clause(self, lits: Iterable[int]) -> bool:
        self.clause_list.append(list(lits))
        return True


class Preprocessor:
    """Simplifies a CNF; see module docstring.

    Typical use::

        pre = Preprocessor(nvars, frozen=frozen_vars)
        for c in clauses: pre.add_clause(c)
        status = pre.run()           # True, or False if UNSAT already
        solver = Solver(); solver.new_vars(nvars)
        for c in pre.clauses(): solver.add_clause(c)
        if solver.solve(assumptions):
            model = pre.reconstruct(solver.model)
    """

    def __init__(self, nvars: int, frozen: Optional[Iterable[int]] = None) -> None:
        self.nvars = nvars
        self.frozen: Set[int] = set(frozen or [])
        self._clauses: Dict[int, FrozenSet[int]] = {}
        self._next_id = 0
        self._occur: Dict[int, Set[int]] = {}
        self._assigned: Dict[int, int] = {}  # var -> value (from units)
        self._eliminated: List[Tuple[int, List[FrozenSet[int]]]] = []
        self._unsat = False

    # ------------------------------------------------------------------

    def add_clause(self, lits: Iterable[int]) -> None:
        clause = frozenset(lits)
        for lit in clause:
            if lit >> 1 >= self.nvars:
                raise PreprocessorError(f"literal {lit} out of range")
        if any((lit ^ 1) in clause for lit in clause):
            return  # tautology
        self._insert(clause)

    def _insert(self, clause: FrozenSet[int]) -> Optional[int]:
        cid = self._next_id
        self._next_id += 1
        self._clauses[cid] = clause
        for lit in clause:
            self._occur.setdefault(lit, set()).add(cid)
        return cid

    def _remove(self, cid: int) -> None:
        clause = self._clauses.pop(cid)
        for lit in clause:
            self._occur.get(lit, set()).discard(cid)

    def clauses(self) -> List[List[int]]:
        """Current clause list (after :meth:`run`), plus unit facts."""
        out = [sorted(c) for c in self._clauses.values()]
        for var, val in self._assigned.items():
            out.append([var * 2 + (0 if val else 1)])
        return out

    @property
    def is_unsat(self) -> bool:
        return self._unsat

    # ------------------------------------------------------------------

    def run(self, max_passes: int = 12) -> bool:
        """Simplify to fixpoint (bounded); returns False if proven UNSAT."""
        for _ in range(max_passes):
            changed = False
            changed |= self._propagate_units()
            if self._unsat:
                return False
            changed |= self._subsume_all()
            changed |= self._eliminate_variables()
            if self._unsat:
                return False
            if not changed:
                break
        return not self._unsat

    # -- unit propagation ----------------------------------------------

    def _propagate_units(self) -> bool:
        changed = False
        while True:
            unit = next(
                (cid for cid, c in self._clauses.items() if len(c) == 1), None
            )
            if unit is None:
                return changed
            (lit,) = self._clauses[unit]
            var, val = lit >> 1, 1 - (lit & 1)
            if var in self._assigned:
                if self._assigned[var] != val:
                    self._unsat = True
                    return True
                self._remove(unit)
                continue
            self._assigned[var] = val
            changed = True
            # satisfied clauses vanish; falsified literals are stripped
            for cid in list(self._occur.get(lit, ())):
                self._remove(cid)
            for cid in list(self._occur.get(lit ^ 1, ())):
                clause = self._clauses[cid]
                self._remove(cid)
                reduced = clause - {lit ^ 1}
                if not reduced:
                    self._unsat = True
                    return True
                self._insert(reduced)

    # -- subsumption ----------------------------------------------------

    def _subsume_all(self) -> bool:
        changed = False
        for cid in list(self._clauses):
            if cid not in self._clauses:
                continue
            changed |= self._subsume_with(cid)
        return changed

    def _subsume_with(self, cid: int) -> bool:
        """Use clause ``cid`` to subsume/strengthen others."""
        clause = self._clauses.get(cid)
        if clause is None:
            return False
        changed = False
        # candidates: clauses sharing the rarest literal (or its negation
        # for self-subsumption)
        rare = min(clause, key=lambda l: len(self._occur.get(l, ())))
        for other_id in list(self._occur.get(rare, ())):
            if other_id == cid:
                continue
            other = self._clauses.get(other_id)
            if other is None or len(other) < len(clause):
                continue
            if clause <= other:
                self._remove(other_id)
                changed = True
        # self-subsuming resolution on each literal of the clause
        for lit in clause:
            base = clause - {lit}
            for other_id in list(self._occur.get(lit ^ 1, ())):
                other = self._clauses.get(other_id)
                if other is None:
                    continue
                if base <= (other - {lit ^ 1}):
                    self._remove(other_id)
                    reduced = other - {lit ^ 1}
                    if not reduced:
                        self._unsat = True
                        return True
                    self._insert(reduced)
                    changed = True
        return changed

    # -- bounded variable elimination ------------------------------------

    def _eliminate_variables(self, growth_limit: int = 0) -> bool:
        changed = False
        for var in range(self.nvars):
            if var in self.frozen or var in self._assigned:
                continue
            pos = [
                self._clauses[c] for c in self._occur.get(var * 2, set())
                if c in self._clauses
            ]
            neg = [
                self._clauses[c] for c in self._occur.get(var * 2 + 1, set())
                if c in self._clauses
            ]
            if not pos and not neg:
                continue
            if len(pos) * len(neg) > 16:  # keep elimination cheap
                continue
            resolvents: List[FrozenSet[int]] = []
            tautologies = 0
            for p in pos:
                for q in neg:
                    r = (p - {var * 2}) | (q - {var * 2 + 1})
                    if any((lit ^ 1) in r for lit in r):
                        tautologies += 1
                        continue
                    resolvents.append(r)
            if len(resolvents) > len(pos) + len(neg) + growth_limit:
                continue
            # eliminate: drop originals, add resolvents, save definition
            for cid in list(self._occur.get(var * 2, set())) + list(
                self._occur.get(var * 2 + 1, set())
            ):
                if cid in self._clauses:
                    self._remove(cid)
            for r in resolvents:
                if not r:
                    self._unsat = True
                    return True
                self._insert(r)
            self._eliminated.append((var, pos + neg))
            changed = True
        return changed

    # -- model reconstruction --------------------------------------------

    def reconstruct(self, model: Sequence[int]) -> List[int]:
        """Extend a model of the simplified CNF to the original CNF.

        ``model`` is indexable by variable (values 0/1, -1 for free);
        returns a full assignment list.
        """
        full = [v if v in (0, 1) else 0 for v in model]
        while len(full) < self.nvars:
            full.append(0)
        for var, val in self._assigned.items():
            full[var] = val
        for var, saved in reversed(self._eliminated):
            # choose the value satisfying every saved clause
            for candidate in (0, 1):
                full[var] = candidate
                ok = all(
                    any(full[l >> 1] ^ (l & 1) for l in clause)
                    for clause in saved
                )
                if ok:
                    break
        return full
