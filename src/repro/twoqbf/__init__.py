"""CEGAR 2QBF solving with countermodel certificates."""

from .cegar import QbfBudgetExceeded, QbfResult, solve_exists_forall

__all__ = ["QbfBudgetExceeded", "QbfResult", "solve_exists_forall"]
