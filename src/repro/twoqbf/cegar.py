"""CEGAR-based 2QBF solving (∃X ∀Y. M).

The paper uses 2QBF twice:

* as an alternative way to decide ECO feasibility — expression (1),
  ``∃x ∀n M(n, x)``, is UNSAT iff the targets suffice (Section 3.2);
* as the source of *certificate information*: the universal
  counterexamples collected during CEGAR tell the structural multi-target
  patch which miter cofactor combinations are actually needed
  (Section 3.6.2 — 255 copies reduced to 40 for 8 targets).

``solve_exists_forall`` implements the standard expansion-based CEGAR
loop: propose a candidate X assignment from the abstraction, check it
against a universal countermove, and refine the abstraction with the
cofactor of M under that countermove.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .. import obs
from ..network.network import Network
from ..sat.backend import QueryTraits, solver_for
from ..sat.template import CnfTemplate
from ..sat.types import mklit


class QbfBudgetExceeded(Exception):
    """Raised when the CEGAR loop exceeds its iteration or SAT budget."""


@dataclass
class QbfResult:
    """Outcome of a 2QBF ∃X∀Y solve.

    Attributes:
        is_sat: True when a witness X assignment exists.
        witness: the witness (PI id → 0/1) when ``is_sat``.
        countermoves: every universal assignment (PI id → 0/1) used to
            refine the abstraction.  When the instance is UNSAT these are
            the certificate cofactors of Section 3.6.2.
        iterations: number of CEGAR refinement rounds.
    """

    is_sat: bool
    witness: Optional[Dict[int, int]] = None
    countermoves: List[Dict[int, int]] = field(default_factory=list)
    iterations: int = 0


def solve_exists_forall(
    net: Network,
    exists_pis: Sequence[int],
    forall_pis: Sequence[int],
    max_iterations: int = 10000,
    budget_conflicts: Optional[int] = None,
) -> QbfResult:
    """Decide ``∃X ∀Y. net`` where ``net`` has exactly one PO.

    Args:
        net: single-output network over the union of both PI groups.
        exists_pis / forall_pis: a partition of ``net.pis``.
        max_iterations: CEGAR round cap (raises on overrun).
        budget_conflicts: per-SAT-call conflict budget.

    Returns:
        a :class:`QbfResult`.
    """
    if net.num_pos != 1:
        raise ValueError("solve_exists_forall expects a single-PO network")
    exists_set = set(exists_pis)
    forall_set = set(forall_pis)
    if exists_set | forall_set != set(net.pis) or exists_set & forall_set:
        raise ValueError("exists/forall PIs must partition the network PIs")

    # compile once; the verification encode and every CEGAR refinement
    # are stamps of the same template
    template = CnfTemplate(net)

    # verification solver: full circuit, all PIs free
    ver = solver_for(QueryTraits(incremental=True))
    ver_vars = template.stamp(ver)
    out_var = ver_vars[net.pos[0][1]]

    # abstraction solver: shared variables for the existential PIs,
    # plus two constant variables the refinement stamps bind the
    # universal PIs to (units propagate at stamp time, so the constants
    # cascade through each copy like a cofactor)
    abs_solver = solver_for(QueryTraits(incremental=True))
    abs_x = {pi: abs_solver.new_var() for pi in exists_pis}
    const_vars: List[int] = []  # [false_var, true_var], created lazily

    result = QbfResult(is_sat=False)
    with obs.span("qbf.solve"):
        try:
            for _ in range(max_iterations):
                result.iterations += 1
                if not abs_solver.solve(budget_conflicts=budget_conflicts):
                    return result  # abstraction UNSAT: no witness exists
                candidate = {
                    pi: abs_solver.model_value(mklit(abs_x[pi]))
                    for pi in exists_pis
                }
                # countermove: does some Y falsify M under the candidate X?
                assumptions = [
                    mklit(ver_vars[pi], candidate[pi] == 0) for pi in exists_pis
                ]
                assumptions.append(mklit(out_var, True))  # M = 0
                if not ver.solve(assumptions, budget_conflicts=budget_conflicts):
                    result.is_sat = True
                    result.witness = candidate
                    return result
                countermove = {
                    pi: ver.model_value(mklit(ver_vars[pi])) for pi in forall_pis
                }
                result.countermoves.append(countermove)
                # refine: require M(X, countermove) = 1 in the abstraction
                # by stamping the template with the universal PIs bound
                # to constants — the abstraction solver persists
                if not const_vars:
                    cf, ct = abs_solver.new_var(), abs_solver.new_var()
                    abs_solver.add_clause([mklit(cf, True)])
                    abs_solver.add_clause([mklit(ct)])
                    const_vars.extend((cf, ct))
                pi_bind = dict(abs_x)
                for pi in forall_pis:
                    pi_bind[pi] = const_vars[countermove[pi]]
                cof_vars = template.stamp(abs_solver, pi_vars=pi_bind)
                abs_solver.add_clause([mklit(cof_vars[net.pos[0][1]])])
                obs.inc("qbf.refinement_stamps")
            raise QbfBudgetExceeded(
                f"no decision after {max_iterations} CEGAR rounds"
            )
        finally:
            obs.inc("qbf.iterations", result.iterations)
            obs.inc("qbf.countermoves", len(result.countermoves))
