"""BLIF reader/writer.

Supports the combinational subset: ``.model``, ``.inputs``, ``.outputs``,
``.names`` with SOP plane lines, and ``.end``.  ``.names`` covers are
imported as two-level AND/OR/NOT logic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..network.network import Network
from ..network.node import GateType


class BlifError(Exception):
    """Raised on unparseable BLIF input."""


def parse_blif(text: str) -> Network:
    """Parse a combinational BLIF model into a :class:`Network`."""
    # join continuation lines, strip comments
    raw_lines = text.split("\n")
    lines: List[str] = []
    buf = ""
    for raw in raw_lines:
        line = raw.split("#", 1)[0].rstrip()
        if line.endswith("\\"):
            buf += line[:-1] + " "
            continue
        line = buf + line
        buf = ""
        if line.strip():
            lines.append(line.strip())

    model = ""
    inputs: List[str] = []
    outputs: List[str] = []
    names_blocks: List[Tuple[List[str], List[str]]] = []
    i = 0
    while i < len(lines):
        line = lines[i]
        if line.startswith(".model"):
            model = line.split(None, 1)[1].strip() if " " in line else ""
        elif line.startswith(".inputs"):
            inputs.extend(line.split()[1:])
        elif line.startswith(".outputs"):
            outputs.extend(line.split()[1:])
        elif line.startswith(".names"):
            sig = line.split()[1:]
            if not sig:
                raise BlifError(".names needs at least an output")
            plane: List[str] = []
            j = i + 1
            while j < len(lines) and not lines[j].startswith("."):
                plane.append(lines[j])
                j += 1
            names_blocks.append((sig, plane))
            i = j - 1
        elif line.startswith(".end"):
            break
        elif line.startswith(".latch"):
            raise BlifError("sequential BLIF is not supported")
        i += 1

    net = Network(model or "blif")
    for pin in inputs:
        net.add_pi(pin)

    driver: Dict[str, Tuple[List[str], List[str]]] = {}
    for sig, plane in names_blocks:
        out = sig[-1]
        if out in driver:
            raise BlifError(f"{out!r} defined twice")
        driver[out] = (sig[:-1], plane)

    def build(goal: str) -> int:
        if net.has_name(goal):
            return net.node_by_name(goal)
        stack: List[Tuple[str, bool]] = [(goal, False)]
        on_path: set = set()
        while stack:
            wire, expanded = stack.pop()
            if net.has_name(wire):
                continue
            if expanded:
                on_path.discard(wire)
                if wire not in driver:
                    raise BlifError(f"signal {wire!r} has no driver")
                ins, plane = driver[wire]
                _materialize_names(net, wire, ins, plane)
                continue
            if wire in on_path:
                raise BlifError(f"combinational cycle through {wire!r}")
            on_path.add(wire)
            stack.append((wire, True))
            if wire in driver:
                for dep in driver[wire][0]:
                    if not net.has_name(dep):
                        stack.append((dep, False))
        return net.node_by_name(goal)

    for out in outputs:
        net.add_po(build(out), out)
    return net


def _materialize_names(
    net: Network, out: str, ins: List[str], plane: List[str]
) -> None:
    """Build one ``.names`` SOP block as AND/OR/NOT gates."""
    in_ids = [net.node_by_name(x) for x in ins]
    if not ins:
        # constant: a single "1" line means const1, empty plane means const0
        value = 1 if any(row.strip() == "1" for row in plane) else 0
        net.add_gate(GateType.BUF, [net.add_const(value)], out)
        return
    onset_rows: List[str] = []
    offset_rows: List[str] = []
    for row in plane:
        parts = row.split()
        if len(parts) != 2:
            raise BlifError(f"bad plane row {row!r}")
        pattern, value = parts
        if len(pattern) != len(ins):
            raise BlifError(f"plane row width mismatch: {row!r}")
        if value == "1":
            onset_rows.append(pattern)
        elif value == "0":
            offset_rows.append(pattern)
        else:
            raise BlifError(f"bad output value in {row!r}")
    if offset_rows:
        if onset_rows:
            raise BlifError("mixed onset/offset planes are not supported")
        # offset-specified cover: complement of the OR of the rows
        lits = [_row_to_and(net, r, in_ids) for r in offset_rows]
        if len(lits) == 1:
            net.add_gate(GateType.NOT, [lits[0]], out)
        else:
            net.add_gate(GateType.NOR, lits, out)
        return
    if not onset_rows:
        net.add_gate(GateType.BUF, [net.add_const(0)], out)
        return
    terms = [_row_to_and(net, pattern, in_ids) for pattern in onset_rows]
    if len(terms) == 1:
        net.add_gate(GateType.BUF, [terms[0]], out)
    else:
        net.add_gate(GateType.OR, terms, out)


def _row_to_and(net: Network, pattern: str, in_ids: List[int]) -> int:
    lits: List[int] = []
    for ch, nid in zip(pattern, in_ids):
        if ch == "1":
            lits.append(nid)
        elif ch == "0":
            lits.append(net.add_gate(GateType.NOT, [nid]))
        elif ch != "-":
            raise BlifError(f"bad plane character {ch!r}")
    if not lits:
        return net.add_const(1)
    if len(lits) == 1:
        return lits[0]
    return net.add_gate(GateType.AND, lits)


def read_blif(path: str) -> Network:
    """Read a BLIF file."""
    with open(path, "r", encoding="utf-8") as f:
        return parse_blif(f.read())


def write_blif(net: Network, path: Optional[str] = None) -> str:
    """Serialize ``net`` as BLIF (each gate becomes one ``.names``)."""
    names: Dict[int, str] = {}
    used = set()
    for node in net.nodes():
        if node.name:
            names[node.nid] = node.name
            used.add(node.name)
    for node in net.nodes():
        if node.nid not in names:
            cand = f"n{node.nid}"
            while cand in used:
                cand = "_" + cand
            names[node.nid] = cand
            used.add(cand)
    lines = [f".model {net.name or 'top'}"]
    if net.pis:
        lines.append(".inputs " + " ".join(names[p] for p in net.pis))
    po_aliases: List[Tuple[str, int]] = []
    lines.append(".outputs " + " ".join(po for po, _ in net.pos))
    for po_name, nid in net.pos:
        if names[nid] != po_name:
            po_aliases.append((po_name, nid))
    for node in net.topo_order():
        if node.is_pi:
            continue
        lines.extend(_names_block(node, names))
    for po_name, nid in po_aliases:
        lines.append(f".names {names[nid]} {po_name}")
        lines.append("1 1")
    lines.append(".end")
    text = "\n".join(lines) + "\n"
    if path:
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
    return text


def _names_block(node, names: Dict[int, str]) -> List[str]:
    from ..network.node import GateType as G

    fan = [names[f] for f in node.fanins]
    head = ".names " + " ".join(fan + [names[node.nid]])
    k = len(fan)
    g = node.gtype
    if g is G.CONST0:
        return [f".names {names[node.nid]}"]
    if g is G.CONST1:
        return [f".names {names[node.nid]}", "1"]
    if g is G.BUF:
        return [head, "1 1"]
    if g is G.NOT:
        return [head, "0 1"]
    if g is G.AND:
        return [head, "1" * k + " 1"]
    if g is G.NAND:
        return [head] + [
            "-" * i + "0" + "-" * (k - i - 1) + " 1" for i in range(k)
        ]
    if g is G.OR:
        return [head] + [
            "-" * i + "1" + "-" * (k - i - 1) + " 1" for i in range(k)
        ]
    if g is G.NOR:
        return [head, "0" * k + " 1"]
    if g in (G.XOR, G.XNOR):
        rows = []
        for m in range(1 << k):
            ones = bin(m).count("1")
            val = ones % 2 if g is G.XOR else 1 - ones % 2
            if val:
                rows.append(
                    "".join("1" if (m >> i) & 1 else "0" for i in range(k)) + " 1"
                )
        return [head] + rows
    if g is G.MUX:
        # fanins (s, d0, d1): out = d1 when s else d0
        return [head, "01- 1", "1-1 1"]
    raise BlifError(f"cannot serialize gate type {g}")
