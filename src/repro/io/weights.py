"""Weight-file I/O and the ECO-instance container.

The ICCAD'17 contest supplies, per unit, the old implementation, the new
specification, and a weight file assigning a resource cost to every
signal of the old implementation.  This module reads/writes the weight
format (``<signal> <weight>`` per line) and bundles a complete ECO
instance (implementation + specification + targets + weights) with
directory-based persistence.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..network.network import Network
from .verilog import read_verilog, write_verilog


def parse_weights(text: str) -> Dict[str, int]:
    """Parse ``<signal> <weight>`` lines into a dict."""
    weights: Dict[str, int] = {}
    for lineno, raw in enumerate(text.split("\n"), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(f"weights line {lineno}: expected 'name weight'")
        weights[parts[0]] = int(parts[1])
    return weights


def read_weights(path: str) -> Dict[str, int]:
    """Read a weight file."""
    with open(path, "r", encoding="utf-8") as f:
        return parse_weights(f.read())


def write_weights(weights: Dict[str, int], path: Optional[str] = None) -> str:
    """Serialize weights; returns the text."""
    text = "\n".join(f"{name} {w}" for name, w in sorted(weights.items())) + "\n"
    if path:
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
    return text


@dataclass
class EcoInstance:
    """One resource-aware ECO problem (the contest's per-unit bundle).

    Attributes:
        name: unit name (e.g. ``unit7``).
        impl: the old implementation netlist, containing the targets.
        spec: the new specification netlist (same PI/PO names).
        targets: names of the implementation nodes to re-synthesize.
        weights: resource cost of every implementation signal usable as
            a patch input; signals absent from the map default to
            :attr:`default_weight`.
        default_weight: cost assumed for unlisted signals.
    """

    name: str
    impl: Network
    spec: Network
    targets: List[str]
    weights: Dict[str, int] = field(default_factory=dict)
    default_weight: int = 1

    def target_ids(self) -> List[int]:
        """Implementation node ids of the targets."""
        return [self.impl.node_by_name(t) for t in self.targets]

    def weight_of(self, node_id: int) -> int:
        """Cost of using an implementation node as a patch input."""
        node = self.impl.node(node_id)
        if node.name and node.name in self.weights:
            return self.weights[node.name]
        return self.default_weight

    def save(self, directory: str) -> None:
        """Write ``impl.v``, ``spec.v``, ``weights.txt``, ``targets.txt``."""
        os.makedirs(directory, exist_ok=True)
        write_verilog(self.impl, os.path.join(directory, "impl.v"))
        write_verilog(self.spec, os.path.join(directory, "spec.v"))
        write_weights(self.weights, os.path.join(directory, "weights.txt"))
        with open(os.path.join(directory, "targets.txt"), "w", encoding="utf-8") as f:
            f.write("\n".join(self.targets) + "\n")

    @classmethod
    def load(cls, directory: str, name: Optional[str] = None) -> "EcoInstance":
        """Read an instance saved by :meth:`save`."""
        impl = read_verilog(os.path.join(directory, "impl.v"))
        spec = read_verilog(os.path.join(directory, "spec.v"))
        weights = read_weights(os.path.join(directory, "weights.txt"))
        with open(os.path.join(directory, "targets.txt"), "r", encoding="utf-8") as f:
            targets = [t.strip() for t in f if t.strip()]
        return cls(
            name=name or os.path.basename(os.path.normpath(directory)),
            impl=impl,
            spec=spec,
            targets=targets,
            weights=weights,
        )
