"""ISCAS-89 ``.bench`` reader/writer (combinational subset)."""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..network.network import Network
from ..network.node import GateType

_BENCH_GATES = {
    "AND": GateType.AND,
    "OR": GateType.OR,
    "NAND": GateType.NAND,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "MUX": GateType.MUX,
}

_REVERSE = {
    GateType.AND: "AND",
    GateType.OR: "OR",
    GateType.NAND: "NAND",
    GateType.NOR: "NOR",
    GateType.XOR: "XOR",
    GateType.XNOR: "XNOR",
    GateType.NOT: "NOT",
    GateType.BUF: "BUFF",
    GateType.MUX: "MUX",
}


class BenchError(Exception):
    """Raised on unparseable .bench input."""


def parse_bench(text: str) -> Network:
    """Parse combinational ``.bench`` text into a :class:`Network`."""
    inputs: List[str] = []
    outputs: List[str] = []
    driver: Dict[str, Tuple[GateType, List[str]]] = {}
    for raw in text.split("\n"):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        m = re.fullmatch(r"INPUT\s*\(\s*(\S+?)\s*\)", line, flags=re.I)
        if m:
            inputs.append(m.group(1))
            continue
        m = re.fullmatch(r"OUTPUT\s*\(\s*(\S+?)\s*\)", line, flags=re.I)
        if m:
            outputs.append(m.group(1))
            continue
        m = re.fullmatch(r"(\S+)\s*=\s*(\w+)\s*\(\s*(.*?)\s*\)", line)
        if not m:
            raise BenchError(f"unsupported line: {line!r}")
        out, prim, args = m.group(1), m.group(2).upper(), m.group(3)
        if prim == "DFF":
            raise BenchError("sequential .bench is not supported")
        if prim not in _BENCH_GATES:
            raise BenchError(f"unknown primitive {prim!r}")
        ins = [a.strip() for a in args.split(",") if a.strip()]
        if out in driver:
            raise BenchError(f"signal {out!r} defined twice")
        driver[out] = (_BENCH_GATES[prim], ins)

    net = Network("bench")
    for pin in inputs:
        net.add_pi(pin)

    def build(goal: str) -> int:
        if net.has_name(goal):
            return net.node_by_name(goal)
        stack: List[Tuple[str, bool]] = [(goal, False)]
        on_path: set = set()
        while stack:
            wire, expanded = stack.pop()
            if net.has_name(wire):
                continue
            if expanded:
                on_path.discard(wire)
                if wire not in driver:
                    raise BenchError(f"signal {wire!r} has no driver")
                gtype, ins = driver[wire]
                net.add_gate(gtype, [net.node_by_name(x) for x in ins], wire)
                continue
            if wire in on_path:
                raise BenchError(f"combinational cycle through {wire!r}")
            on_path.add(wire)
            stack.append((wire, True))
            if wire in driver:
                for dep in driver[wire][1]:
                    if not net.has_name(dep):
                        stack.append((dep, False))
        return net.node_by_name(goal)

    for out in outputs:
        net.add_po(build(out), out)
    for wire in driver:
        build(wire)
    return net


def read_bench(path: str) -> Network:
    """Read a ``.bench`` file."""
    with open(path, "r", encoding="utf-8") as f:
        return parse_bench(f.read())


def write_bench(net: Network, path: Optional[str] = None) -> str:
    """Serialize ``net`` as ``.bench`` text."""
    names: Dict[int, str] = {}
    used = set()
    for node in net.nodes():
        if node.name:
            names[node.nid] = node.name
            used.add(node.name)
    for node in net.nodes():
        if node.nid not in names:
            cand = f"n{node.nid}"
            while cand in used:
                cand = "_" + cand
            names[node.nid] = cand
            used.add(cand)
    lines = [f"# {net.name or 'top'}"]
    for pi in net.pis:
        lines.append(f"INPUT({names[pi]})")
    po_aliases = []
    for po_name, nid in net.pos:
        lines.append(f"OUTPUT({po_name})")
        if names[nid] != po_name:
            po_aliases.append((po_name, nid))
    for node in net.topo_order():
        if node.is_pi:
            continue
        if node.is_const:
            # .bench has no constants; emit via XOR(x,x)/XNOR(x,x) on a PI
            if not net.pis:
                raise BenchError("cannot emit constants without any PI")
            x = names[net.pis[0]]
            op = "XNOR" if node.gtype is GateType.CONST1 else "XOR"
            lines.append(f"{names[node.nid]} = {op}({x}, {x})")
            continue
        prim = _REVERSE[node.gtype]
        args = ", ".join(names[f] for f in node.fanins)
        lines.append(f"{names[node.nid]} = {prim}({args})")
    for po_name, nid in po_aliases:
        lines.append(f"{po_name} = BUFF({names[nid]})")
    text = "\n".join(lines) + "\n"
    if path:
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
    return text
