"""Netlist and ECO-instance I/O: Verilog, BLIF, .bench, AIGER, weights."""

from .aiger import AigerError, parse_aiger, read_aiger, write_aiger
from .bench import BenchError, parse_bench, read_bench, write_bench
from .blif import BlifError, parse_blif, read_blif, write_blif
from .verilog import VerilogError, parse_verilog, read_verilog, write_verilog
from .weights import (
    EcoInstance,
    parse_weights,
    read_weights,
    write_weights,
)

__all__ = [
    "AigerError",
    "BenchError",
    "BlifError",
    "EcoInstance",
    "VerilogError",
    "parse_aiger",
    "parse_bench",
    "parse_blif",
    "parse_verilog",
    "parse_weights",
    "read_aiger",
    "read_bench",
    "read_blif",
    "read_verilog",
    "read_weights",
    "write_aiger",
    "write_bench",
    "write_blif",
    "write_verilog",
    "write_weights",
]
