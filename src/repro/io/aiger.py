"""AIGER (ASCII ``.aag``) reader/writer.

The standard exchange format for And-Inverter Graphs: combinational
networks round-trip through the strashed AIG; latches map to
:class:`~repro.seq.network.SeqNetwork` registers.  Symbol and comment
sections are honored for PI/PO/latch names.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..network.network import Network
from ..network.node import GateType
from ..network.strash import AigBuilder, strash_into


class AigerError(Exception):
    """Raised on malformed AIGER input."""


def parse_aiger(text: str):
    """Parse ASCII AIGER.

    Returns a :class:`Network` for purely combinational files and a
    :class:`~repro.seq.network.SeqNetwork` when latches are present.
    """
    lines = [l.rstrip("\n") for l in text.split("\n")]
    if not lines or not lines[0].startswith("aag "):
        raise AigerError("missing 'aag' header (binary 'aig' not supported)")
    header = lines[0].split()
    if len(header) < 6:
        raise AigerError("header needs M I L O A")
    m, i, l, o, a = (int(x) for x in header[1:6])

    idx = 1
    input_lits = [int(lines[idx + k].split()[0]) for k in range(i)]
    idx += i
    latch_defs: List[Tuple[int, int, int]] = []
    for k in range(l):
        parts = [int(x) for x in lines[idx + k].split()]
        if len(parts) < 2:
            raise AigerError(f"bad latch line {lines[idx + k]!r}")
        init = parts[2] if len(parts) > 2 else 0
        latch_defs.append((parts[0], parts[1], init))
    idx += l
    output_lits = [int(lines[idx + k].split()[0]) for k in range(o)]
    idx += o
    and_defs: List[Tuple[int, int, int]] = []
    for k in range(a):
        parts = [int(x) for x in lines[idx + k].split()]
        if len(parts) != 3:
            raise AigerError(f"bad AND line {lines[idx + k]!r}")
        and_defs.append((parts[0], parts[1], parts[2]))
    idx += a

    # symbol table
    names: Dict[str, str] = {}
    for line in lines[idx:]:
        if line.startswith("c"):
            break
        if not line:
            continue
        tag, _, name = line.partition(" ")
        if tag and name:
            names[tag] = name

    net = Network("aiger")
    lit_node: Dict[int, int] = {0: net.add_const(0), 1: net.add_const(1)}
    for k, lit in enumerate(input_lits):
        if lit & 1 or lit == 0:
            raise AigerError(f"input literal {lit} must be positive/even")
        lit_node[lit] = net.add_pi(names.get(f"i{k}", f"i{k}"))
    latch_out_nodes: List[int] = []
    for k, (lit, _, _) in enumerate(latch_defs):
        if lit & 1:
            raise AigerError(f"latch literal {lit} must be even")
        nid = net.add_pi(names.get(f"l{k}", f"l{k}"))
        lit_node[lit] = nid
        latch_out_nodes.append(nid)

    def node_of(lit: int) -> int:
        if lit in lit_node:
            return lit_node[lit]
        if lit & 1:
            base = node_of(lit ^ 1)
            lit_node[lit] = net.add_gate(GateType.NOT, [base])
            return lit_node[lit]
        raise AigerError(f"literal {lit} referenced before definition")

    for out_lit, in0, in1 in and_defs:
        if out_lit & 1:
            raise AigerError("AND output literal must be even")
        fan = [node_of(in0), node_of(in1)]
        lit_node[out_lit] = net.add_gate(GateType.AND, fan)

    for k, lit in enumerate(output_lits):
        net.add_po(node_of(lit), names.get(f"o{k}", f"o{k}"))

    if not latch_defs:
        return net

    from ..seq.network import Latch, SeqNetwork

    latches = []
    for k, (lit, next_lit, init) in enumerate(latch_defs):
        if init not in (0, 1):
            raise AigerError("only constant latch initializations supported")
        latches.append(
            Latch(
                name=net.node(latch_out_nodes[k]).name,
                output=latch_out_nodes[k],
                data_input=node_of(next_lit),
                init=init,
            )
        )
    return SeqNetwork(net, latches)


def read_aiger(path: str):
    """Read an ``.aag`` file."""
    with open(path, "r", encoding="utf-8") as f:
        return parse_aiger(f.read())


def write_aiger(net, path: Optional[str] = None) -> str:
    """Serialize a (sequential) network as ASCII AIGER.

    Combinational :class:`Network` or :class:`SeqNetwork` accepted; the
    logic is strashed into AIG form first.
    """
    from ..seq.network import SeqNetwork

    if isinstance(net, SeqNetwork):
        core = net.core
        latches = net.latches
    else:
        core = net
        latches = []

    builder = AigBuilder()
    pi_lits: Dict[int, int] = {}
    latch_outputs = {l.output for l in latches}
    true_pis = [pi for pi in core.pis if pi not in latch_outputs]
    for pi in true_pis:
        pi_lits[pi] = builder.add_pi()
    latch_lits: Dict[int, int] = {}
    for latch in latches:
        latch_lits[latch.output] = builder.add_pi()
        pi_lits[latch.output] = latch_lits[latch.output]
    litmap = strash_into(builder, core, pi_lits)

    # AIGER literal assignment: variables 1..M in creation order
    out_lines: List[str] = []
    # builder nodes: PIs first (as created), then ANDs by id
    n_inputs = len(true_pis)
    n_latches = len(latches)
    aiger_lit: Dict[int, int] = {0: 0}  # builder node -> aiger even literal

    def b2a(blit: int) -> int:
        node = blit >> 1
        base = aiger_lit[node]
        return base ^ (blit & 1)

    next_var = 1
    for pi in builder.pis:
        aiger_lit[pi] = 2 * next_var
        next_var += 1
    and_lines: List[str] = []
    for nid in range(1, len(builder._fanins)):
        fan = builder._fanins[nid]
        if fan is None:
            continue
        aiger_lit[nid] = 2 * next_var
        next_var += 1
        and_lines.append(
            f"{aiger_lit[nid]} {b2a(fan[0])} {b2a(fan[1])}"
        )
    max_var = next_var - 1

    header = (
        f"aag {max_var} {n_inputs} {n_latches} {core.num_pos} "
        f"{len(and_lines)}"
    )
    out_lines.append(header)
    for k, pi in enumerate(true_pis):
        out_lines.append(str(b2a(pi_lits[pi])))
    for latch in latches:
        out_lines.append(
            f"{b2a(latch_lits[latch.output])} "
            f"{b2a(litmap[latch.data_input])} {latch.init}"
        )
    for po_name, nid in core.pos:
        out_lines.append(str(b2a(litmap[nid])))
    out_lines.extend(and_lines)
    for k, pi in enumerate(true_pis):
        out_lines.append(f"i{k} {core.node(pi).name}")
    for k, latch in enumerate(latches):
        out_lines.append(f"l{k} {latch.name}")
    for k, (po_name, _) in enumerate(core.pos):
        out_lines.append(f"o{k} {po_name}")
    text = "\n".join(out_lines) + "\n"
    if path:
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
    return text
