"""Structural Verilog reader/writer (ICCAD'17 contest subset).

The contest benchmarks use a flat gate-level subset of Verilog: one
module, ``input``/``output``/``wire`` declarations, primitive gate
instantiations with the output as the first terminal, and constant
drivers ``1'b0`` / ``1'b1`` via ``assign``.  This module parses and
emits exactly that subset.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..network.network import Network
from ..network.node import GateType

_GATE_TYPES = {
    "and": GateType.AND,
    "or": GateType.OR,
    "nand": GateType.NAND,
    "nor": GateType.NOR,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
    "not": GateType.NOT,
    "buf": GateType.BUF,
    "mux": GateType.MUX,
}

_REVERSE_GATE = {v: k for k, v in _GATE_TYPES.items()}


class VerilogError(Exception):
    """Raised on unparseable input."""


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.S)
    text = re.sub(r"//[^\n]*", " ", text)
    return text


def parse_verilog(text: str) -> Network:
    """Parse one flat structural module into a :class:`Network`."""
    text = _strip_comments(text)
    m = re.search(r"\bmodule\s+(\w+)\s*\((.*?)\)\s*;", text, flags=re.S)
    if not m:
        raise VerilogError("no module header found")
    name = m.group(1)
    body = text[m.end() : text.find("endmodule")]
    if text.find("endmodule") < 0:
        raise VerilogError("missing endmodule")

    inputs: List[str] = []
    outputs: List[str] = []
    statements = [s.strip() for s in body.split(";") if s.strip()]
    gates: List[Tuple[GateType, str, List[str]]] = []
    assigns: List[Tuple[str, str]] = []
    for stmt in statements:
        kw = stmt.split(None, 1)[0]
        if kw in ("input", "output", "wire"):
            rest = stmt[len(kw) :]
            names = [w.strip() for w in rest.split(",") if w.strip()]
            for w in names:
                if not re.fullmatch(r"[A-Za-z_\\][\w\$\.\[\]\\]*", w):
                    raise VerilogError(f"bad identifier {w!r} in {kw} declaration")
            if kw == "input":
                inputs.extend(names)
            elif kw == "output":
                outputs.extend(names)
            continue
        if kw == "assign":
            am = re.fullmatch(r"assign\s+(\S+)\s*=\s*(\S+)", stmt)
            if not am:
                raise VerilogError(f"unsupported assign: {stmt!r}")
            assigns.append((am.group(1), am.group(2)))
            continue
        gm = re.fullmatch(r"(\w+)\s+(\S+)?\s*\(\s*(.*?)\s*\)", stmt, flags=re.S)
        if not gm:
            raise VerilogError(f"unsupported statement: {stmt!r}")
        prim = gm.group(1)
        if prim not in _GATE_TYPES:
            raise VerilogError(f"unknown primitive {prim!r} in {stmt!r}")
        terms = [t.strip() for t in gm.group(3).split(",")]
        if len(terms) < 2:
            raise VerilogError(f"gate needs an output and inputs: {stmt!r}")
        gates.append((_GATE_TYPES[prim], terms[0], terms[1:]))

    net = Network(name)
    for pin in inputs:
        net.add_pi(pin)

    driver: Dict[str, Tuple[GateType, List[str]]] = {}
    for gtype, out, ins in gates:
        if out in driver:
            raise VerilogError(f"wire {out!r} driven twice")
        driver[out] = (gtype, ins)
    const_assign: Dict[str, int] = {}
    alias: Dict[str, str] = {}
    for out, rhs in assigns:
        if rhs in ("1'b0", "1'b1"):
            const_assign[out] = 1 if rhs.endswith("1") else 0
        else:
            alias[out] = rhs

    def deps_of(wire: str) -> List[str]:
        if wire in alias:
            return [alias[wire]]
        if wire in driver:
            return driver[wire][1]
        return []

    def resolve(goal: str) -> int:
        """Iterative post-order construction of the cone under ``goal``."""
        if net.has_name(goal):
            return net.node_by_name(goal)
        stack: List[Tuple[str, bool]] = [(goal, False)]
        on_path: set = set()
        while stack:
            wire, expanded = stack.pop()
            if net.has_name(wire) or wire in ("1'b0", "1'b1"):
                continue
            if expanded:
                on_path.discard(wire)
                if wire in const_assign:
                    cid = net.add_const(const_assign[wire])
                    net.add_gate(GateType.BUF, [cid], wire)
                elif wire in alias:
                    src = _wire_node(net, alias[wire])
                    net.add_gate(GateType.BUF, [src], wire)
                elif wire in driver:
                    gtype, ins = driver[wire]
                    net.add_gate(gtype, [_wire_node(net, w) for w in ins], wire)
                else:
                    raise VerilogError(f"wire {wire!r} has no driver")
                continue
            if wire in on_path:
                raise VerilogError(f"combinational cycle through {wire!r}")
            on_path.add(wire)
            stack.append((wire, True))
            for dep in deps_of(wire):
                if not net.has_name(dep) and dep not in ("1'b0", "1'b1"):
                    stack.append((dep, False))
        return _wire_node(net, goal)

    for out in outputs:
        net.add_po(resolve(out), out)
    # materialize any dangling drivers too (they may be divisors)
    for wire in driver:
        resolve(wire)
    return net


def _wire_node(net: Network, wire: str) -> int:
    """Node id for an already-materialized wire or constant token."""
    if wire in ("1'b0", "1'b1"):
        return net.add_const(1 if wire.endswith("1") else 0)
    return net.node_by_name(wire)


def read_verilog(path: str) -> Network:
    """Read a structural Verilog file."""
    with open(path, "r", encoding="utf-8") as f:
        return parse_verilog(f.read())


def write_verilog(net: Network, path: Optional[str] = None) -> str:
    """Serialize ``net`` as structural Verilog; returns the text.

    Nodes without names are assigned ``n<id>`` wire names.  XOR/XNOR
    gates of arity > 2 are emitted as-is (the reader accepts them).
    """
    names: Dict[int, str] = {}
    used = set()
    for node in net.nodes():
        if node.name:
            names[node.nid] = node.name
            used.add(node.name)
    for node in net.nodes():
        if node.nid not in names:
            candidate = f"n{node.nid}"
            while candidate in used:
                candidate = "_" + candidate
            names[node.nid] = candidate
            used.add(candidate)

    in_names = [names[pi] for pi in net.pis]
    # POs may alias internal wires; emit buffers for PO names that are
    # not the driving node's name
    po_lines: List[str] = []
    po_names: List[str] = []
    for po_name, nid in net.pos:
        po_names.append(po_name)
        if names[nid] != po_name:
            po_lines.append(f"  buf po_buf_{len(po_lines)} ({po_name}, {names[nid]});")

    lines = [f"module {net.name or 'top'} ("]
    lines.append("  " + ", ".join(in_names + po_names))
    lines.append(");")
    if in_names:
        lines.append("  input " + ", ".join(in_names) + ";")
    if po_names:
        lines.append("  output " + ", ".join(po_names) + ";")
    wires = [
        names[n.nid]
        for n in net.nodes()
        if n.is_gate and names[n.nid] not in po_names
    ]
    consts = [n for n in net.nodes() if n.is_const]
    for c in consts:
        wires.append(names[c.nid])
    if wires:
        lines.append("  wire " + ", ".join(wires) + ";")
    for c in consts:
        value = "1'b1" if c.gtype is GateType.CONST1 else "1'b0"
        lines.append(f"  assign {names[c.nid]} = {value};")
    idx = 0
    for node in net.nodes():
        if not node.is_gate:
            continue
        prim = _REVERSE_GATE[node.gtype]
        terms = [names[node.nid]] + [names[f] for f in node.fanins]
        lines.append(f"  {prim} g{idx} ({', '.join(terms)});")
        idx += 1
    lines.extend(po_lines)
    lines.append("endmodule")
    text = "\n".join(lines) + "\n"
    if path:
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
    return text
