"""Command-line interface: the contest flow as a tool.

Subcommands::

    repro-eco patch    --impl impl.v --spec spec.v --targets t1,t2 \
                       [--weights weights.txt] [--method minassump] \
                       [--out patched.v]
    repro-eco run      (--unit unit7 | --impl impl.v --spec spec.v \
                       --targets t1,t2) [--method minassump] [--trace] \
                       [--profile] [--telemetry-out obs.json] [--csv]
    repro-eco localize --impl impl.v --spec spec.v [--max-targets 4]
    repro-eco cec      --impl a.v --spec b.v
    repro-eco check    netlist.v [...] [--unit unit7] [--rules NL001,..] \
                       [--no-encoding] [--patterns 64] [--json]
    repro-eco analyze  [--strict] [--method minassump] [--passes spec] \
                       [--stages window,divisors,...] [--json]
    repro-eco generate --unit unit7 --out unit7_dir
    repro-eco suite    [--units unit1,unit4] [--methods minassump]

``run`` is ``patch`` plus observability: ``--trace`` prints the
:mod:`repro.obs` span tree, ``--profile`` emits the schema-validated
telemetry JSON (span names and counter keys are catalogued in
docs/OBSERVABILITY.md).

Also runnable as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from . import obs
from .benchgen import METHODS, SUITE, build_unit, format_table, run_unit, unit_spec
from .core import apply_patches, cec, localize_targets
from .core.engine import (
    EcoConfig,
    EcoEngine,
    baseline_config,
    best_config,
    contest_config,
)
from .io import EcoInstance, read_verilog, read_weights, write_verilog

_CONFIGS = {
    "baseline": baseline_config,
    "minassump": contest_config,
    "satprune_cegarmin": best_config,
}


def _add_netlist_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--impl", required=True, help="implementation netlist (.v)")
    p.add_argument("--spec", required=True, help="specification netlist (.v)")


def _add_backend_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--backend",
        default="native",
        help=(
            "registered SAT backend to route solver queries to "
            "(default: native, the in-process CDCL solver; see "
            "repro.sat.backend)"
        ),
    )
    p.add_argument(
        "--backend-policy",
        choices=("fixed", "traits"),
        default="fixed",
        help=(
            "per-query backend selection policy: 'fixed' always asks "
            "the --backend engine, 'traits' routes each query to the "
            "first registered backend supporting its declared traits "
            "(default: fixed)"
        ),
    )


def _backend_config(cfg: EcoConfig, args: argparse.Namespace) -> EcoConfig:
    """Fold the --backend/--backend-policy flags into an engine config."""
    backend = getattr(args, "backend", "native")
    policy = getattr(args, "backend_policy", "fixed")
    if backend == cfg.backend and policy == cfg.backend_policy:
        return cfg
    return dataclasses.replace(cfg, backend=backend, backend_policy=policy)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-eco",
        description="SAT-based resource-aware ECO patch generation (DAC'18)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("patch", help="compute and insert ECO patches")
    _add_netlist_args(p)
    p.add_argument(
        "--targets",
        required=True,
        help="comma-separated target names, or @file with one per line",
    )
    p.add_argument("--weights", help="weight file (name weight per line)")
    p.add_argument(
        "--method",
        choices=sorted(_CONFIGS),
        default="minassump",
        help="Table 1 method column (default: minassump)",
    )
    p.add_argument("--out", help="write the patched netlist here (.v)")
    p.add_argument(
        "--no-verify", action="store_true", help="skip the final CEC"
    )

    p = sub.add_parser(
        "run",
        help="run the ECO engine with tracing/profiling telemetry",
        description=(
            "Compute and insert ECO patches like 'patch', with the "
            "repro.obs observability layer enabled: --trace prints the "
            "hierarchical span tree, --profile emits schema-validated "
            "JSON telemetry (see docs/OBSERVABILITY.md for the key "
            "catalogue)."
        ),
    )
    p.add_argument("--unit", help="run a synthetic suite unit (e.g. unit7)")
    p.add_argument("--impl", help="implementation netlist (.v)")
    p.add_argument("--spec", help="specification netlist (.v)")
    p.add_argument(
        "--targets",
        help="comma-separated target names, or @file with one per line",
    )
    p.add_argument("--weights", help="weight file (name weight per line)")
    p.add_argument(
        "--method",
        choices=sorted(_CONFIGS),
        default="minassump",
        help="Table 1 method column (default: minassump)",
    )
    p.add_argument(
        "--passes",
        help=(
            "pass-selection spec over the method's pipeline: "
            "comma-separated stage names keep only those optional "
            "stages, '-name' drops a stage (use the '=' form for "
            "leading dashes, e.g. --passes=-cegar_min, or "
            "'feasibility,sat_flow,support,patch_function,verify'); "
            "see docs/PIPELINE.md for the stage catalogue"
        ),
    )
    p.add_argument(
        "--trace",
        action="store_true",
        help="print the wall-clock span tree after the run",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="emit the telemetry export (JSON unless --csv)",
    )
    p.add_argument(
        "--telemetry-out",
        help="write the --profile export to this file instead of stdout",
    )
    p.add_argument(
        "--csv",
        action="store_true",
        help="export --profile telemetry as CSV instead of JSON",
    )
    p.add_argument("--out", help="write the patched netlist here (.v)")
    p.add_argument(
        "--no-verify", action="store_true", help="skip the final CEC"
    )
    _add_backend_args(p)

    p = sub.add_parser("localize", help="detect candidate target nodes")
    _add_netlist_args(p)
    p.add_argument("--max-targets", type=int, default=4)
    p.add_argument("--top", type=int, default=10, help="ranked names to show")

    p = sub.add_parser("cec", help="combinational equivalence check")
    _add_netlist_args(p)

    p = sub.add_parser(
        "check",
        help="lint netlists and validate their CNF encodings",
        description=(
            "Static analysis: netlist lint rules (NL00x) plus CNF "
            "well-formedness and Tseitin/simulation cross-checks "
            "(CN00x).  Exits 1 when any error-severity finding is "
            "reported, 0 otherwise.  Rule ids are catalogued in "
            "docs/CHECKING.md."
        ),
    )
    p.add_argument("nets", nargs="*", help="netlist files (.v) to check")
    p.add_argument(
        "--unit", help="also check a synthetic suite unit (impl and spec)"
    )
    p.add_argument(
        "--rules",
        help="comma-separated lint rule ids (default: all except NL006)",
    )
    p.add_argument(
        "--no-encoding",
        action="store_true",
        help="skip the CNF/simulation encoding validation",
    )
    p.add_argument(
        "--patterns",
        type=int,
        default=64,
        help="random vectors for the encoding cross-check (default: 64)",
    )
    p.add_argument(
        "--json", action="store_true", help="emit findings as JSON"
    )

    p = sub.add_parser(
        "analyze",
        help="static analysis of the repo itself: pass contracts + lint",
        description=(
            "Two checkers (see docs/ANALYSIS.md): the pass-contract "
            "dataflow verifier (PA rules) validates pipeline orderings "
            "against each stage's declared reads/writes and reports "
            "the may-run-in-parallel stage partition; the project "
            "linter (RA rules) enforces cross-layer invariants "
            "(obs-key catalogue drift, clause-group discipline, clone "
            "allowlist, determinism, typed stats).  Exits 1 on any "
            "error finding (with --strict, warnings fail too)."
        ),
    )
    p.add_argument(
        "--method",
        choices=sorted(_CONFIGS),
        help="verify only this method's pipeline (default: all three)",
    )
    p.add_argument(
        "--passes",
        help="verify the pipeline with this --passes selection applied",
    )
    p.add_argument(
        "--stages",
        help=(
            "verify an explicit comma-separated stage order (linear, "
            "no fallback-chain modelling) instead of a method pipeline"
        ),
    )
    p.add_argument(
        "--src",
        nargs="*",
        default=["src/repro"],
        help="sources for the project linter (default: src/repro)",
    )
    p.add_argument(
        "--docs",
        default="docs/OBSERVABILITY.md",
        help="obs key catalogue (default: docs/OBSERVABILITY.md)",
    )
    p.add_argument(
        "--no-lint",
        action="store_true",
        help="skip the RA project linter",
    )
    p.add_argument(
        "--no-contracts",
        action="store_true",
        help="skip the PA pipeline verifier",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="warning-severity findings also fail the run",
    )
    p.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    p = sub.add_parser("generate", help="materialize a synthetic suite unit")
    p.add_argument("--unit", required=True, help="unit name, e.g. unit7")
    p.add_argument("--out", required=True, help="output directory")

    p = sub.add_parser("suite", help="run Table 1 rows")
    p.add_argument("--units", help="comma-separated unit names (default: all)")
    p.add_argument(
        "--methods",
        default=",".join(METHODS),
        help="comma-separated method columns",
    )

    p = sub.add_parser(
        "batch",
        help="run many suite units through the shared-arena batch "
        "front-end and export a bench-schema latency document",
    )
    p.add_argument("--units", help="comma-separated unit names (default: all)")
    p.add_argument(
        "--method",
        default="satprune_cegarmin",
        help="Table 1 method column to run every unit under",
    )
    p.add_argument("--jobs", type=int, default=1, help="worker processes")
    p.add_argument(
        "--no-arena",
        action="store_true",
        help="skip template precompilation / shared-memory arena",
    )
    p.add_argument("--out", help="write the bench document to this path")
    p.add_argument(
        "--json", action="store_true", help="print the bench document"
    )
    _add_backend_args(p)

    p = sub.add_parser(
        "chaos",
        help="run the suite under seeded fault injection and check "
        "degradation invariants",
    )
    p.add_argument(
        "--seeds",
        default="7,9,10,14,16",
        help="comma-separated chaos seeds (one run per seed)",
    )
    p.add_argument(
        "--units",
        help="comma-separated unit names (default: the small chaos set)",
    )
    p.add_argument("--jobs", type=int, default=2, help="worker processes")
    p.add_argument(
        "--timeout",
        type=float,
        default=8.0,
        help="per-unit timeout in seconds",
    )
    p.add_argument(
        "--fault-rate",
        type=float,
        default=0.75,
        help="per-unit fault probability",
    )
    p.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    return parser


def _parse_targets(arg: str) -> List[str]:
    if arg.startswith("@"):
        with open(arg[1:], "r", encoding="utf-8") as f:
            return [t.strip() for t in f if t.strip()]
    return [t.strip() for t in arg.split(",") if t.strip()]


def cmd_patch(args: argparse.Namespace) -> int:
    impl = read_verilog(args.impl)
    spec = read_verilog(args.spec)
    weights = read_weights(args.weights) if args.weights else {}
    instance = EcoInstance(
        name="cli",
        impl=impl,
        spec=spec,
        targets=_parse_targets(args.targets),
        weights=weights,
    )
    import dataclasses

    cfg = _CONFIGS[args.method]()
    if args.no_verify:
        cfg = dataclasses.replace(cfg, verify=False)
    result = EcoEngine(cfg).run(instance)
    print(f"method:   {args.method} ({result.method} flow)")
    print(f"cost:     {result.cost}")
    print(f"gates:    {result.gate_count}")
    print(f"verified: {result.verified}")
    for patch in result.patches:
        print(f"  {patch.target} <- {', '.join(patch.support) or '<const>'}")
    if args.out:
        patched = apply_patches(instance.impl, result.patches)
        patched.cleanup()
        write_verilog(patched, args.out)
        print(f"patched netlist written to {args.out}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    if args.unit:
        if args.impl or args.spec or args.targets:
            print(
                "error: give either --unit or --impl/--spec/--targets",
                file=sys.stderr,
            )
            return 2
        instance = build_unit(unit_spec(args.unit))
    else:
        if not (args.impl and args.spec and args.targets):
            print(
                "error: run needs --unit, or --impl + --spec + --targets",
                file=sys.stderr,
            )
            return 2
        instance = EcoInstance(
            name="cli",
            impl=read_verilog(args.impl),
            spec=read_verilog(args.spec),
            targets=_parse_targets(args.targets),
            weights=read_weights(args.weights) if args.weights else {},
        )

    cfg = _CONFIGS[args.method]()
    if args.no_verify:
        cfg = dataclasses.replace(cfg, verify=False)
    cfg = _backend_config(cfg, args)

    registry = obs.get_registry()
    registry.reset()
    registry.enable()
    try:
        result = EcoEngine(cfg, passes=args.passes).run(instance)
    finally:
        registry.disable()

    print(f"unit:     {instance.name}", file=sys.stderr)
    print(
        f"method:   {args.method} ({result.method} flow)  "
        f"cost={result.cost} gates={result.gate_count} "
        f"verified={result.verified} "
        f"t={result.runtime_seconds:.3f}s",
        file=sys.stderr,
    )
    if args.trace:
        print(obs.format_spans(registry))
    if args.profile:
        if args.csv:
            payload = obs.export_csv(registry)
        else:
            doc = registry.snapshot()
            obs.validate_telemetry(doc)
            payload = json.dumps(doc, indent=2, sort_keys=True)
        if args.telemetry_out:
            with open(args.telemetry_out, "w", encoding="utf-8") as f:
                f.write(payload if payload.endswith("\n") else payload + "\n")
            print(f"telemetry written to {args.telemetry_out}", file=sys.stderr)
        else:
            print(payload)
    if args.out:
        patched = apply_patches(instance.impl, result.patches)
        patched.cleanup()
        write_verilog(patched, args.out)
        print(f"patched netlist written to {args.out}", file=sys.stderr)
    return 0


def cmd_localize(args: argparse.Namespace) -> int:
    impl = read_verilog(args.impl)
    spec = read_verilog(args.spec)
    res = localize_targets(impl, spec, max_targets=args.max_targets)
    if not res.ranked:
        print("netlists appear equivalent; nothing to localize")
        return 0
    print("ranked candidates (single-fix repair score):")
    for name, score in res.ranked[: args.top]:
        print(f"  {name:24s} {score:.3f}")
    if res.targets:
        print(f"confirmed sufficient target set: {', '.join(res.targets)}")
        return 0
    print("no sufficient target set confirmed within budget")
    return 1


def cmd_cec(args: argparse.Namespace) -> int:
    impl = read_verilog(args.impl)
    spec = read_verilog(args.spec)
    res = cec(impl, spec)
    if res.equivalent:
        print("EQUIVALENT")
        return 0
    print("NOT EQUIVALENT")
    if res.counterexample:
        print("counterexample:")
        for name, val in sorted(res.counterexample.items()):
            print(f"  {name} = {val}")
    return 1


def cmd_check(args: argparse.Namespace) -> int:
    import json

    from .check import run_checks

    subjects = []
    for path in args.nets:
        subjects.append((path, read_verilog(path)))
    if args.unit:
        instance = build_unit(unit_spec(args.unit))
        subjects.append((f"{args.unit}.impl", instance.impl))
        subjects.append((f"{args.unit}.spec", instance.spec))
    if not subjects:
        print("error: nothing to check (give netlist files or --unit)",
              file=sys.stderr)
        return 2
    rules = (
        [r.strip() for r in args.rules.split(",") if r.strip()]
        if args.rules
        else None
    )
    reports = [
        run_checks(
            net,
            name=name,
            rules=rules,
            encoding=not args.no_encoding,
            patterns=args.patterns,
        )
        for name, net in subjects
    ]
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    else:
        for report in reports:
            for finding in report:
                print(f"{report.subject}: {finding.format()}")
            print(report.summary())
    return 0 if all(r.ok for r in reports) else 1


def cmd_analyze(args: argparse.Namespace) -> int:
    import json

    from .analyze.lint import lint_paths
    from .analyze.verifier import (
        verify_selection,
        verify_stage_order,
    )
    from .core.pipeline import parse_pass_selection

    analyses = {}
    if args.stages:
        names = [n.strip() for n in args.stages.split(",") if n.strip()]
        analyses["stages"] = verify_stage_order(names)
    elif not args.no_contracts:
        methods = [args.method] if args.method else sorted(_CONFIGS)
        selection = (
            parse_pass_selection(args.passes) if args.passes else None
        )
        for method in methods:
            analyses[method] = verify_selection(
                _CONFIGS[method](), selection
            )

    lint_report = None
    if not args.stages and not args.no_lint:
        lint_report = lint_paths(args.src, args.docs)

    if args.json:
        doc = {
            "pipelines": {
                name: analysis.to_dict()
                for name, analysis in analyses.items()
            },
        }
        if lint_report is not None:
            doc["lint"] = lint_report.to_dict()
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        for name, analysis in analyses.items():
            for finding in analysis.report:
                print(f"{name}: {finding.format()}")
            print(f"{name}: {analysis.report.summary()}")
            for scope, waves in analysis.partitions.items():
                rendered = " | ".join(
                    "{" + ", ".join(wave) + "}" for wave in waves
                )
                print(f"{name}: parallel[{scope}]: {rendered}")
        if lint_report is not None:
            for finding in lint_report:
                print(finding.format())
            print(lint_report.summary())

    reports = [a.report for a in analyses.values()]
    if lint_report is not None:
        reports.append(lint_report)
    failed = any(r.errors for r in reports)
    if args.strict:
        failed = failed or any(r.warnings for r in reports)
    return 1 if failed else 0


def cmd_generate(args: argparse.Namespace) -> int:
    instance = build_unit(unit_spec(args.unit))
    instance.save(args.out)
    print(
        f"{args.unit}: {instance.impl.num_pis} PIs, "
        f"{instance.impl.num_gates} gates, targets={instance.targets}"
    )
    print(f"written to {args.out}/ (impl.v, spec.v, weights.txt, targets.txt)")
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    names = (
        [n.strip() for n in args.units.split(",") if n.strip()]
        if args.units
        else None
    )
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    for m in methods:
        if m not in METHODS:
            print(f"unknown method {m!r}; choose from {METHODS}", file=sys.stderr)
            return 2
    rows = []
    for spec in SUITE:
        if names is not None and spec.name not in names:
            continue
        rows.append(run_unit(spec, methods=methods))
    print(format_table(rows, methods))
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    import json

    from .batch import items_from_suite, run_batch

    names = (
        [n.strip() for n in args.units.split(",") if n.strip()]
        if args.units
        else None
    )
    items = items_from_suite(names, method=args.method)
    # fold --backend/--backend-policy into every item's pickled config:
    # the worker-side engine installs the selector from it, so the
    # choice survives the trip into the process pool
    items = [
        dataclasses.replace(
            it, config=_backend_config(it.resolved_config(), args)
        )
        for it in items
    ]
    report = run_batch(
        items,
        jobs=args.jobs,
        use_arena=not args.no_arena,
        suite="batch",
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(report.document, f, indent=2, sort_keys=True)
            f.write("\n")
    if args.json:
        print(json.dumps(report.document, indent=2, sort_keys=True))
    else:
        lat = report.document["latency"]
        print(
            f"batch: {len(report.results)} unit(s), jobs={report.jobs}, "
            f"wall {report.wall_s:.2f}s, arena {report.arena_entries} "
            f"entr{'y' if report.arena_entries == 1 else 'ies'} "
            f"({report.arena_bytes} B), "
            f"p50 {lat['p50_s']:.3f}s p99 {lat['p99_s']:.3f}s"
        )
        for rec in report.results:
            entry = rec["entry"]
            status = "ok" if rec["ok"] else f"ERROR {rec['error']}"
            print(
                f"  {rec['unit']:<8} cost {entry['cost']:>5} "
                f"gates {entry['gates']:>3} "
                f"{'verified' if entry['verified'] else 'UNVERIFIED'} "
                f"{rec['elapsed_s']:.3f}s [{status}]"
            )
    failures = report.failures()
    if failures:
        print(
            f"batch: {len(failures)} unit(s) failed", file=sys.stderr
        )
        return 1
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from .resilience.chaos import run_chaos

    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    units = (
        [n.strip() for n in args.units.split(",") if n.strip()]
        if args.units
        else None
    )
    reports = [
        run_chaos(
            seed,
            units=units,
            jobs=args.jobs,
            unit_timeout=args.timeout,
            fault_rate=args.fault_rate,
        )
        for seed in seeds
    ]
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    else:
        for rep in reports:
            print(rep.summary())
    failed = [r.seed for r in reports if not r.ok]
    if failed:
        print(
            f"chaos: invariant violations for seeds {failed}",
            file=sys.stderr,
        )
        return 1
    if not args.json:  # keep --json stdout machine-parseable
        print(f"chaos: {len(reports)} seed(s) passed all invariants")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "patch": cmd_patch,
        "run": cmd_run,
        "localize": cmd_localize,
        "cec": cmd_cec,
        "check": cmd_check,
        "analyze": cmd_analyze,
        "generate": cmd_generate,
        "suite": cmd_suite,
        "batch": cmd_batch,
        "chaos": cmd_chaos,
    }
    from .core.engine import EcoEngineError
    from .core.feasibility import EcoInfeasibleError
    from .io.verilog import VerilogError
    from .network.network import NetworkError

    try:
        return handlers[args.command](args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (VerilogError, NetworkError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except EcoInfeasibleError as exc:
        print(f"infeasible: {exc}", file=sys.stderr)
        return 3
    except EcoEngineError as exc:
        print(f"engine failure: {exc}", file=sys.stderr)
        return 4


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
