"""repro — reproduction of "Efficient Computation of ECO Patch Functions".

A from-scratch Python implementation of the DAC 2018 SAT-based ECO
patch-generation engine (Dao, Lee, Chen, Lin, Jiang, Mishchenko,
Brayton), including every substrate it relies on: a gate-level Boolean
network, a CDCL SAT solver with assumption cores and proof logging,
Tseitin encoding, interpolation, 2QBF CEGAR, SOP factoring/synthesis,
and max-flow min-cut.

Quick start::

    from repro import EcoEngine, contest_config
    from repro.benchgen import build_suite

    instance = build_suite()[0]
    result = EcoEngine(contest_config()).run(instance)
    print(result.cost, result.gate_count, result.verified)
"""

from .core import (
    EcoConfig,
    EcoEngine,
    EcoEngineError,
    EcoInfeasibleError,
    EcoResult,
    Patch,
    apply_patch,
    apply_patches,
    baseline_config,
    best_config,
    cec,
    contest_config,
)
from .io import EcoInstance, read_verilog, write_verilog
from .network import GateType, Network

__version__ = "1.0.0"

__all__ = [
    "EcoConfig",
    "EcoEngine",
    "EcoEngineError",
    "EcoInfeasibleError",
    "EcoInstance",
    "EcoResult",
    "GateType",
    "Network",
    "Patch",
    "apply_patch",
    "apply_patches",
    "baseline_config",
    "best_config",
    "cec",
    "contest_config",
    "read_verilog",
    "write_verilog",
    "__version__",
]
